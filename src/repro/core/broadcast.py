"""One-call public API: build a network, run an algorithm, get a report.

    >>> from repro import broadcast
    >>> result = broadcast(n=4096, algorithm="cluster2", seed=7)
    >>> result.success, result.rounds, round(result.messages_per_node, 1)
    (True, ..., ...)

Dispatch is a thin lookup in :mod:`repro.registry`: every algorithm —
the paper's and every baseline — self-registers an
:class:`~repro.registry.AlgorithmSpec`, so sweeps in
:mod:`repro.analysis.runner` iterate the same catalogue uniformly and
third-party algorithms plug in without touching this module.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import LAPTOP, Profile, get_profile
from repro.core.result import AlgorithmReport
from repro.registry import algorithm_names, get_algorithm
from repro.sim.dynamics import AdversitySchedule, resolve_schedule
from repro.sim.engine import Simulator
from repro.sim.failures import apply_pattern
from repro.sim.metrics import Metrics
from repro.sim.network import Network
from repro.sim.rng import derive_seed, make_rng
from repro.sim.trace import Trace

#: Re-exported so ``from repro import BroadcastResult`` reads naturally.
BroadcastResult = AlgorithmReport

__all__ = ["BroadcastResult", "algorithm_names", "broadcast"]


def broadcast(
    n: int,
    algorithm: str = "cluster2",
    *,
    seed: int = 0,
    source: Optional[int] = 0,
    message_bits: int = 256,
    failures: float = 0,
    failure_pattern: str = "random",
    schedule: "AdversitySchedule | str | None" = None,
    profile: "Profile | str" = LAPTOP,
    trace: Optional[Trace] = None,
    check_model: bool = True,
    **algorithm_kwargs,
) -> AlgorithmReport:
    """Broadcast a ``message_bits``-bit rumor from ``source`` to all nodes.

    Parameters
    ----------
    n:
        Network size.
    algorithm:
        One of :func:`repro.registry.algorithm_names` (default the
        paper's Cluster2).
    seed:
        Master seed; network addressing, failures and the algorithm's coins
        all derive deterministic substreams from it.
    source:
        Index of the initially informed node, or None for a uniformly
        random *surviving* node (Theorem 19's setting: the rumor starts at
        some live node).
    message_bits:
        Rumor size ``b`` (must be positive; the paper assumes
        ``b = Omega(log n)``).
    failures:
        Number of nodes an oblivious adversary fails before the start
        (Section 8); with ``failure_pattern="fraction"`` it is instead the
        fraction in [0, 1) of nodes to fail.
    failure_pattern:
        ``"random"``, ``"prefix"``, ``"smallest-uids"`` or ``"fraction"``.
    schedule:
        Optional dynamic-adversity timeline
        (:class:`repro.sim.dynamics.AdversitySchedule`, a preset name, or
        a ``parse_schedule`` spec string): mid-run crashes, revivals,
        blackouts and message loss applied at round boundaries.  ``None``
        or an empty schedule leaves the engine on the untouched static
        path (bit-identical output for a fixed seed).
    profile:
        Constant-resolution profile or its name.
    check_model:
        Enable the engine's one-initiation-per-round validation.
    algorithm_kwargs:
        Extra knobs forwarded to the algorithm (its
        :class:`~repro.registry.AlgorithmSpec` lists the accepted names,
        e.g. ``delta=64`` for ``cluster3``).
    """
    spec = get_algorithm(algorithm)
    if isinstance(profile, str):
        profile = get_profile(profile)
    if source is not None and not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")

    net = Network(n, rng=derive_seed(seed, "net"), rumor_bits=message_bits)
    if failures:
        apply_pattern(net, failure_pattern, failures, derive_seed(seed, "fail"))
    if source is None:
        alive = net.alive_indices()
        source = int(alive[make_rng(derive_seed(seed, "source")).integers(len(alive))])
    resolved = resolve_schedule(schedule)
    dynamics = (
        resolved.bind(net, make_rng(derive_seed(seed, "dynamics")))
        if resolved is not None
        else None
    )
    sim = Simulator(
        net,
        make_rng(derive_seed(seed, "algo")),
        Metrics(n),
        check_model=check_model,
        dynamics=dynamics,
    )
    report = spec.run(sim, source, profile, trace, **algorithm_kwargs)
    report.extras.setdefault("seed", seed)
    report.extras.setdefault("failures", failures)
    report.extras.setdefault("source", int(source))
    # Whether the initial rumor holder survived the run: under a dynamics
    # timeline it may crash mid-broadcast, and an execution whose only
    # copy of the rumor died is a model outcome, not a harness failure.
    report.extras.setdefault("source_alive", bool(net.alive[source]))
    if dynamics is not None:
        report.extras.setdefault("schedule", resolved.describe())
        for key, value in dynamics.summary().items():
            report.extras.setdefault(key, value)
    return report
