"""One-call public API: build a network, run an algorithm, get a report.

    >>> from repro import broadcast
    >>> result = broadcast(n=4096, algorithm="cluster2", seed=7)
    >>> result.success, result.rounds, round(result.messages_per_node, 1)
    (True, ..., ...)

Algorithms are looked up in :data:`ALGORITHMS`; the registry spans the
paper's algorithms and every baseline, so sweeps in
:mod:`repro.analysis.runner` can iterate uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.constants import LAPTOP, Profile, get_profile
from repro.core.result import AlgorithmReport
from repro.sim.engine import Simulator
from repro.sim.failures import apply_pattern
from repro.sim.metrics import Metrics
from repro.sim.network import Network
from repro.sim.rng import derive_seed, make_rng
from repro.sim.trace import Trace

#: Re-exported so ``from repro import BroadcastResult`` reads naturally.
BroadcastResult = AlgorithmReport


def _registry() -> Dict[str, Callable]:
    """Name -> runner(sim, source, profile, trace) for every algorithm.

    Built lazily so that :mod:`repro.baselines` (which imports
    :mod:`repro.core.result`) does not create an import cycle.
    """
    from repro.baselines.avin_elsasser import avin_elsasser
    from repro.baselines.median_counter import median_counter
    from repro.baselines.uniform_pull import uniform_pull
    from repro.baselines.uniform_push import uniform_push
    from repro.baselines.push_pull import uniform_push_pull
    from repro.core.cluster1 import cluster1
    from repro.core.cluster2 import cluster2
    from repro.core.cluster_push_pull import cluster3_broadcast

    def _wrap_plain(fn):
        def run(sim, source, profile, trace, **kw):
            return fn(sim, source, trace=trace, **kw)

        return run

    def _wrap_profiled(fn):
        def run(sim, source, profile, trace, **kw):
            return fn(sim, source, profile=profile, trace=trace, **kw)

        return run

    def _cluster3(sim, source, profile, trace, **kw):
        delta = kw.pop("delta", max(8, int(round(sim.net.n ** 0.5))))
        return cluster3_broadcast(
            sim, delta, source, profile=profile, trace=trace, **kw
        )

    return {
        "cluster1": _wrap_profiled(cluster1),
        "cluster2": _wrap_profiled(cluster2),
        "cluster3": _cluster3,
        "push": _wrap_plain(uniform_push),
        "pull": _wrap_plain(uniform_pull),
        "push-pull": _wrap_plain(uniform_push_pull),
        "median-counter": _wrap_plain(median_counter),
        "avin-elsasser": _wrap_plain(avin_elsasser),
    }


def algorithm_names() -> "list[str]":
    """Names accepted by :func:`broadcast`."""
    return sorted(_registry())


def broadcast(
    n: int,
    algorithm: str = "cluster2",
    *,
    seed: int = 0,
    source: Optional[int] = 0,
    message_bits: int = 256,
    failures: int = 0,
    failure_pattern: str = "random",
    profile: "Profile | str" = LAPTOP,
    trace: Optional[Trace] = None,
    check_model: bool = True,
    **algorithm_kwargs,
) -> AlgorithmReport:
    """Broadcast a ``message_bits``-bit rumor from ``source`` to all nodes.

    Parameters
    ----------
    n:
        Network size.
    algorithm:
        One of :func:`algorithm_names` (default the paper's Cluster2).
    seed:
        Master seed; network addressing, failures and the algorithm's coins
        all derive deterministic substreams from it.
    source:
        Index of the initially informed node, or None for a uniformly
        random *surviving* node (Theorem 19's setting: the rumor starts at
        some live node).
    message_bits:
        Rumor size ``b`` (must be positive; the paper assumes
        ``b = Omega(log n)``).
    failures:
        Number of nodes an oblivious adversary fails before the start
        (Section 8).
    failure_pattern:
        ``"random"``, ``"prefix"`` or ``"smallest-uids"``.
    profile:
        Constant-resolution profile or its name.
    check_model:
        Enable the engine's one-initiation-per-round validation.
    algorithm_kwargs:
        Extra knobs forwarded to the algorithm (e.g. ``delta=64`` for
        ``cluster3``).
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    registry = _registry()
    if algorithm not in registry:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(registry)}"
        )
    if source is not None and not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")

    net = Network(n, rng=derive_seed(seed, "net"), rumor_bits=message_bits)
    if failures:
        apply_pattern(net, failure_pattern, failures, derive_seed(seed, "fail"))
    if source is None:
        alive = net.alive_indices()
        source = int(alive[make_rng(derive_seed(seed, "source")).integers(len(alive))])
    sim = Simulator(
        net,
        make_rng(derive_seed(seed, "algo")),
        Metrics(n),
        check_model=check_model,
    )
    report = registry[algorithm](sim, source, profile, trace, **algorithm_kwargs)
    report.extras.setdefault("seed", seed)
    report.extras.setdefault("failures", failures)
    return report
