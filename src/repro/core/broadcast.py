"""One-call public API: build a network, run an algorithm, get a report.

    >>> from repro import broadcast
    >>> result = broadcast(n=4096, algorithm="cluster2", seed=7)
    >>> result.success, result.rounds, round(result.messages_per_node, 1)
    (True, ..., ...)

Dispatch is a thin lookup in :mod:`repro.registry`: every algorithm —
the paper's and every baseline — self-registers an
:class:`~repro.registry.AlgorithmSpec`, so sweeps in
:mod:`repro.analysis.runner` iterate the same catalogue uniformly and
third-party algorithms plug in without touching this module.

``task`` selects the workload semantics (:mod:`repro.tasks`): the
default ``"broadcast"`` is the paper's single-rumor setting on the
untouched legacy path (bit-identical output for a fixed seed); any other
registered task — ``"k-rumor"``, ``"push-sum"``, ``"min-max"`` — builds
a :class:`~repro.tasks.state.TaskState` from its own seed stream and
runs it through the algorithm's registered task transport::

    >>> broadcast(n=4096, algorithm="cluster2", task="push-sum",
    ...           schedule="churn-light", seed=7)   # doctest: +SKIP
"""

from __future__ import annotations

import logging
from dataclasses import replace as _dc_replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.core.constants import LAPTOP, Profile, get_profile
from repro.core.result import AlgorithmReport
from repro.registry import (
    BROADCAST_TASK,
    AlgorithmSpec,
    IncompatibleTaskError,
    IncompatibleTopologyError,
    algorithm_names,
    compatible_algorithms,
    compatible_topologies,
    get_algorithm,
    get_task,
)
from repro.obs.spans import maybe_span
from repro.sim.batch import DEFAULT_BATCH_ELEMS, batch_size
from repro.sim.dynamics import AdversitySchedule, resolve_schedule
from repro.sim.schedule import (
    EventSchedulerSpec,
    make_batch_overlay,
    resolve_scheduler,
)
from repro.sim.topology import ADDRESSING_MODES, Topology, resolve_topology
from repro.sim.engine import BufferPool, Simulator
from repro.sim.failures import apply_pattern
from repro.sim.metrics import Metrics
from repro.sim.network import Network
from repro.sim.rng import derive_seed, make_rng
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.stats import ReplicationSummary
    from repro.obs.telemetry import Telemetry

#: Re-exported so ``from repro import BroadcastResult`` reads naturally.
BroadcastResult = AlgorithmReport

_log = logging.getLogger(__name__)

__all__ = [
    "BroadcastResult",
    "ReplicationEngine",
    "algorithm_names",
    "broadcast",
    "run_replications",
]


def _check_task(spec: AlgorithmSpec, task: str) -> None:
    """Validate an (algorithm, task) pair before any network is built.

    The implicit broadcast task is exempt: its (historical) gate is
    ``AlgorithmSpec.run``'s broadcastable check, with its own message.
    """
    get_task(task)  # raises UnknownTaskError on a miss
    if task != BROADCAST_TASK and not spec.supports_task(task):
        raise IncompatibleTaskError(
            f"algorithm {spec.name!r} has no registered task transport for "
            f"task {task!r}; compatible algorithms: "
            f"{compatible_algorithms(task)}"
        )


def _check_topology(
    spec: AlgorithmSpec, topology: Topology, direct_addressing: str
) -> None:
    """Validate an (algorithm, topology) pair and the addressing mode
    before any network is built — a clear error beats a wrong run."""
    if direct_addressing not in ADDRESSING_MODES:
        raise ValueError(
            f"direct_addressing must be one of {ADDRESSING_MODES}, "
            f"got {direct_addressing!r}"
        )
    if not spec.supports_topology(topology):
        raise IncompatibleTopologyError(
            f"algorithm {spec.name!r} only runs on the complete contact "
            f"graph, not on {topology.describe()!r}; compatible topologies: "
            f"{compatible_topologies(spec.name)}"
        )


def broadcast(
    n: int,
    algorithm: str = "cluster2",
    *,
    seed: int = 0,
    source: Optional[int] = 0,
    message_bits: int = 256,
    failures: float = 0,
    failure_pattern: str = "random",
    schedule: "AdversitySchedule | str | None" = None,
    task: str = BROADCAST_TASK,
    task_kwargs: Optional[Dict[str, Any]] = None,
    topology: "Topology | str | None" = None,
    direct_addressing: str = "global",
    scheduler: "EventSchedulerSpec | str | None" = None,
    profile: "Profile | str" = LAPTOP,
    trace: "Trace | bool | None" = None,
    telemetry: "Optional[Telemetry]" = None,
    check_model: bool = True,
    **algorithm_kwargs,
) -> AlgorithmReport:
    """Broadcast a ``message_bits``-bit rumor from ``source`` to all nodes.

    Parameters
    ----------
    n:
        Network size.
    algorithm:
        One of :func:`repro.registry.algorithm_names` (default the
        paper's Cluster2).
    seed:
        Master seed; network addressing, failures and the algorithm's coins
        all derive deterministic substreams from it.
    source:
        Index of the initially informed node, or None for a uniformly
        random *surviving* node (Theorem 19's setting: the rumor starts at
        some live node).
    message_bits:
        Rumor size ``b`` (must be positive; the paper assumes
        ``b = Omega(log n)``).
    failures:
        Number of nodes an oblivious adversary fails before the start
        (Section 8); with ``failure_pattern="fraction"`` it is instead the
        fraction in [0, 1) of nodes to fail.
    failure_pattern:
        ``"random"``, ``"prefix"``, ``"smallest-uids"`` or ``"fraction"``.
    schedule:
        Optional dynamic-adversity timeline
        (:class:`repro.sim.dynamics.AdversitySchedule`, a preset name, or
        a ``parse_schedule`` spec string): mid-run crashes, revivals,
        blackouts and message loss applied at round boundaries.  ``None``
        or an empty schedule leaves the engine on the untouched static
        path (bit-identical output for a fixed seed).
    task:
        Workload semantics (:func:`repro.registry.task_names`): the
        default ``"broadcast"`` is the legacy single-rumor path; other
        tasks run through the algorithm's registered task transport and
        must be compatible (:func:`repro.registry.supports_task`).
    task_kwargs:
        Extra knobs for the task's state factory (e.g. ``{"k": 8}`` for
        ``k-rumor``, ``{"tol": 1e-4}`` for ``push-sum``).
    topology:
        Contact topology (:mod:`repro.sim.topology`): a frozen
        :class:`~repro.sim.topology.Topology` spec, a registered name
        (:func:`repro.registry.topology_names`), or ``None`` for the
        paper's complete graph — the default, bit-identical to the
        pre-topology engine.  Random topologies are re-sampled per seed
        from the network's own stream.
    direct_addressing:
        ``"global"`` (the paper's model, default): learned addresses are
        routable regardless of the contact graph.  ``"topology"``:
        direct calls only connect along contact-graph edges — the
        experiment that measures what direct addressing is worth once
        the complete graph is gone.
    scheduler:
        Execution tier (:mod:`repro.sim.schedule`): ``None`` or
        ``"round"`` (default) keeps the synchronous round clock on the
        untouched engine path; ``"event"`` or an
        :class:`~repro.sim.schedule.EventSchedulerSpec` overlays
        per-node clocks and contact latencies on the same logical
        rounds — metrics stay bit-identical, and the report gains
        ``extras["sim_time"]`` (the simulated completion time).  Delay
        resolution: explicit spec delay > topology ``delay=``
        annotation > unit constant.
    trace:
        ``Trace`` instance for round-level event capture (the legacy
        knob), or ``True`` as shorthand for contact-level causal
        tracing on the event tier: the scheduler (upgraded to the event
        tier when none was requested) fills a
        :class:`~repro.obs.trace.ContactTrace`, and the report gains
        ``extras["contact_trace"]`` / ``extras["critical_path"]`` /
        ``extras["critical_path_len"]`` / ``extras["dilation"]``.
    profile:
        Constant-resolution profile or its name.
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry` collector.  When
        given, the run records wall-clock phase spans, a per-round probe
        series and (unless event collection is off) the trace events into
        a run handle on the collector; export with
        :meth:`~repro.obs.telemetry.Telemetry.write`.  ``None`` (default)
        leaves the engine on the untouched zero-overhead path.
    check_model:
        Enable the engine's one-initiation-per-round validation.
    algorithm_kwargs:
        Extra knobs forwarded to the algorithm (its
        :class:`~repro.registry.AlgorithmSpec` lists the accepted names,
        e.g. ``delta=64`` for ``cluster3``).
    """
    spec = get_algorithm(algorithm)
    _check_task(spec, task)
    topology = resolve_topology(topology)
    _check_topology(spec, topology, direct_addressing)
    if isinstance(profile, str):
        profile = get_profile(profile)
    if source is not None and not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")

    net = Network(
        n,
        rng=derive_seed(seed, "net"),
        rumor_bits=message_bits,
        topology=topology,
        direct_addressing=direct_addressing,
    )
    return _run_on_network(
        net,
        spec,
        seed,
        source=source,
        failures=failures,
        failure_pattern=failure_pattern,
        schedule=resolve_schedule(schedule),
        task=task,
        task_kwargs=task_kwargs,
        scheduler=resolve_scheduler(scheduler),
        profile=profile,
        trace=trace,
        telemetry=telemetry,
        check_model=check_model,
        pool=None,
        algorithm_kwargs=algorithm_kwargs,
    )


def _run_on_network(
    net: Network,
    spec: AlgorithmSpec,
    seed: int,
    *,
    source: Optional[int],
    failures: float,
    failure_pattern: str,
    schedule: Optional[AdversitySchedule],
    profile: Profile,
    trace: Optional[Trace],
    check_model: bool,
    pool: Optional["BufferPool"],
    algorithm_kwargs: dict,
    task: str = BROADCAST_TASK,
    task_kwargs: Optional[Dict[str, Any]] = None,
    scheduler: Optional[EventSchedulerSpec] = None,
    telemetry: "Optional[Telemetry]" = None,
) -> AlgorithmReport:
    """Execute one seeded broadcast on an already-built network.

    ``trace=True`` is the contact-tracing shorthand: the scheduler is
    upgraded to a tracing event tier (created when none was requested),
    and the legacy round-event ``trace`` stays off.

    The single execution path behind both :func:`broadcast` (fresh
    network, no pool) and :class:`ReplicationEngine` (reset network,
    shared pool): every seed-derived stream is identical in both shapes,
    which is what makes reset-engine replications bit-identical to
    independent :func:`broadcast` calls.  Non-broadcast tasks derive
    their initial state from the dedicated ``"task"`` seed stream — the
    legacy streams are untouched, so the default task stays bit-identical
    to the pre-task-layer engine.
    """
    if trace is True:
        trace = None
        scheduler = (
            EventSchedulerSpec(trace=True)
            if scheduler is None
            else _dc_replace(scheduler, trace=True)
        )
    elif trace is False:
        trace = None
    if failures:
        apply_pattern(net, failure_pattern, failures, derive_seed(seed, "fail"))
    if source is None:
        alive = net.alive_indices()
        source = int(alive[make_rng(derive_seed(seed, "source")).integers(len(alive))])
    dynamics = (
        schedule.bind(net, make_rng(derive_seed(seed, "dynamics")))
        if schedule is not None
        else None
    )
    # The event tier binds from the dedicated "delay" stream: straggler
    # sets, per-edge weights and per-message jitter never consume
    # algorithm coins, so event runs stay bit-identical to round runs.
    sched = (
        scheduler.bind(net, make_rng(derive_seed(seed, "delay")))
        if scheduler is not None
        else None
    )
    sim = Simulator(
        net,
        make_rng(derive_seed(seed, "algo")),
        Metrics(net.n),
        check_model=check_model,
        dynamics=dynamics,
        pool=pool,
        scheduler=sched,
    )
    tel_run = None
    if telemetry is not None:
        tel_run = telemetry.begin_run(
            {
                "kind": "sequential",
                "algorithm": spec.name,
                "task": task,
                "n": net.n,
                "seed": seed,
                "source": int(source),
                "message_bits": net.sizes.rumor_bits,
            }
        )
        if trace is None and telemetry.collect_events:
            trace = Trace()
        # All sequential telemetry rides pre-existing attachment points
        # (commit hooks, Metrics.span_recorder): the engine's hot paths
        # are byte-identical whether telemetry is on or off.
        sim.telemetry = tel_run
        sim.metrics.span_recorder = tel_run.spans
        sim.add_commit_hook(tel_run.on_round)
        tel_run.sample(sim)  # round-0 baseline
    if task == BROADCAST_TASK:
        report = spec.run(sim, source, profile, trace, **algorithm_kwargs)
    else:
        state = get_task(task).build(
            net,
            make_rng(derive_seed(seed, "task")),
            message_bits=net.sizes.rumor_bits,
            source=source,
            **(task_kwargs or {}),
        )
        report = spec.run_task(sim, state, profile, trace, **algorithm_kwargs)
    # Causal-trace extras must land before finish_run so the telemetry
    # collector can serialise them into the schema v2 trace/path records.
    if (
        sched is not None
        and getattr(sched, "contacts", None) is not None
        and len(sched.contacts)
    ):
        path = sched.contacts.critical_path()
        report.extras.setdefault("contact_trace", sched.contacts)
        report.extras.setdefault("critical_path", path)
        report.extras.setdefault("critical_path_len", int(path.length))
        report.extras.setdefault(
            "dilation", float(sched.sim_time) / max(report.rounds, 1)
        )
    if tel_run is not None:
        telemetry.finish_run(tel_run, sim=sim, report=report)
    report.extras.setdefault("seed", seed)
    report.extras.setdefault("failures", failures)
    report.extras.setdefault("source", int(source))
    # Whether the initial rumor holder survived the run: under a dynamics
    # timeline it may crash mid-broadcast, and an execution whose only
    # copy of the rumor died is a model outcome, not a harness failure.
    report.extras.setdefault("source_alive", bool(net.alive[source]))
    if net.topology_restricted:
        report.extras.setdefault("topology", net.topology.describe())
        report.extras.setdefault("direct_addressing", net.direct_addressing)
    if sched is not None:
        report.extras.setdefault("scheduler", sched.describe())
        report.extras.setdefault("sim_time", float(sched.sim_time))
    if dynamics is not None:
        report.extras.setdefault("schedule", schedule.describe())
        for key, value in dynamics.summary().items():
            report.extras.setdefault(key, value)
    return report


class ReplicationEngine:
    """A reusable broadcast context: construction cost paid once, not per seed.

    Holds one :class:`~repro.sim.network.Network` (reset in place per
    seed, reusing its O(n) allocations) and one
    :class:`~repro.sim.engine.BufferPool` (reused across rounds *and*
    replications), so a replication suite stops paying network
    construction and per-round scratch allocation for every seed.  The
    memory-lean ``index_dtype="auto"`` mode is the default here — index
    arrays narrow to int32 below ``n = 2**31`` — and every seed's report
    is **bit-identical** to an independent ``broadcast(seed=...)`` call
    (pinned by the fingerprint corpus in ``tests/test_fingerprints.py``):
    random draws are dtype-invariant and pooling only moves intermediates.

    >>> eng = ReplicationEngine(4096, "cluster2")
    >>> reports = [eng.run(seed) for seed in range(100)]   # doctest: +SKIP
    """

    def __init__(
        self,
        n: int,
        algorithm: str = "cluster2",
        *,
        source: Optional[int] = 0,
        message_bits: int = 256,
        failures: float = 0,
        failure_pattern: str = "random",
        schedule: "AdversitySchedule | str | None" = None,
        task: str = BROADCAST_TASK,
        task_kwargs: Optional[Dict[str, Any]] = None,
        topology: "Topology | str | None" = None,
        direct_addressing: str = "global",
        scheduler: "EventSchedulerSpec | str | None" = None,
        profile: "Profile | str" = LAPTOP,
        check_model: bool = True,
        index_dtype: "str | None" = "auto",
        **algorithm_kwargs: Any,
    ) -> None:
        self.n = int(n)
        self.spec = get_algorithm(algorithm)
        _check_task(self.spec, task)
        self.topology = resolve_topology(topology)
        self.direct_addressing = direct_addressing
        _check_topology(self.spec, self.topology, direct_addressing)
        self.source = source
        self.message_bits = message_bits
        self.failures = failures
        self.failure_pattern = failure_pattern
        self.schedule = resolve_schedule(schedule)
        self.scheduler = resolve_scheduler(scheduler)
        self.task = task
        self.task_kwargs = dict(task_kwargs or {})
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.check_model = check_model
        self.index_dtype = index_dtype
        self.algorithm_kwargs = dict(algorithm_kwargs)
        if source is not None and not 0 <= source < n:
            raise ValueError(f"source {source} out of range for n={n}")
        self._net: Optional[Network] = None
        self._pool = BufferPool()

    @property
    def pool(self) -> BufferPool:
        """The shared per-round scratch pool (exposed for tests)."""
        return self._pool

    def run(
        self,
        seed: int,
        trace: "Trace | bool | None" = None,
        telemetry: "Optional[Telemetry]" = None,
    ) -> AlgorithmReport:
        """Execute one replication, bit-identical to ``broadcast(seed=seed)``."""
        net_seed = derive_seed(seed, "net")
        if self._net is None:
            self._net = Network(
                self.n,
                rng=net_seed,
                rumor_bits=self.message_bits,
                index_dtype=self.index_dtype,
                topology=self.topology,
                direct_addressing=self.direct_addressing,
            )
        else:
            self._net.reset(net_seed)
        return _run_on_network(
            self._net,
            self.spec,
            seed,
            source=self.source,
            failures=self.failures,
            failure_pattern=self.failure_pattern,
            schedule=self.schedule,
            task=self.task,
            task_kwargs=self.task_kwargs,
            scheduler=self.scheduler,
            profile=self.profile,
            trace=trace,
            telemetry=telemetry,
            check_model=self.check_model,
            pool=self._pool,
            algorithm_kwargs=self.algorithm_kwargs,
        )


#: Replication execution engines, least to most specialised.
REPLICATION_ENGINES = ("auto", "vector", "reset", "rebuild")


def run_replications(
    n: int,
    algorithm: str = "cluster2",
    reps: int = 1,
    *,
    base_seed: int = 0,
    engine: str = "auto",
    source: Optional[int] = 0,
    message_bits: int = 256,
    failures: float = 0,
    failure_pattern: str = "random",
    schedule: "AdversitySchedule | str | None" = None,
    task: str = BROADCAST_TASK,
    task_kwargs: Optional[Dict[str, Any]] = None,
    topology: "Topology | str | None" = None,
    direct_addressing: str = "global",
    scheduler: "EventSchedulerSpec | str | None" = None,
    profile: "Profile | str" = LAPTOP,
    check_model: bool = True,
    consume: Optional[Callable[[dict], None]] = None,
    batch_elems: int = DEFAULT_BATCH_ELEMS,
    workers: Optional[int] = None,
    telemetry: "Optional[Telemetry]" = None,
    trace: bool = False,
    _seed_offset: int = 0,
    **algorithm_kwargs: Any,
) -> ReplicationSummary:
    """Fan one configuration across ``reps`` seeds, aggregating as a stream.

    Each replication is reduced to its headline scalars the moment it
    finishes and folded into a
    :class:`~repro.analysis.stats.ReplicationSummary` (Welford
    mean/variance, min/max, compact quantile buffer, Wilson success
    interval) — a 500-seed suite holds a handful of floats, never 500
    records.  ``consume`` (optional) additionally receives each
    replication's scalar dict as it streams past, e.g. for live CLI
    output or custom sinks.

    Engines
    -------
    ``"reset"``
        The memory-lean sequential engine (:class:`ReplicationEngine`):
        any algorithm, any schedule; replication ``i`` runs seed
        ``base_seed + i`` and is bit-identical to
        ``broadcast(seed=base_seed + i)``.
    ``"vector"``
        The batched ``(R, n)`` executor (:mod:`repro.sim.batch`) for
        algorithms that registered a batch runner *for the requested
        task* (push-pull has one for ``"broadcast"`` and ``"push-sum"``);
        zero-adversity only.  Statistically equivalent to (not
        stream-identical with) the sequential engines; chunked so no
        work array exceeds ``batch_elems`` elements regardless of
        ``reps``.  ``scheduler=`` rides along through the batched clock
        overlay (:class:`repro.sim.schedule.BatchClockOverlay`) when the
        runner folds contacts and the delay model has a batched sampler
        — the summary then carries per-rep ``sim_time`` streams;
        tracing, event recording, and unbatchable delay models fall back
        to the sequential tier (``engine="auto"``) or raise
        (``engine="vector"``).
    ``"rebuild"``
        The historical loop — a fresh :func:`broadcast` per seed.  Kept
        as the baseline the scale benchmarks measure against.
    ``"auto"``
        ``vector`` when eligible, else ``reset``.

    Sharding
    --------
    ``workers`` switches on sharded execution: the replications are cut
    into contiguous ``(R_shard, n)`` blocks — the vector engine's own
    chunk plan, or up to 16 balanced blocks for the sequential engines —
    each shard streams its own summary (in a ``ProcessPoolExecutor``
    when ``workers > 1``), and the shard summaries merge in shard order
    via :meth:`~repro.analysis.stats.ReplicationSummary.merge`.  The
    shard plan and merge order depend only on the configuration, never
    on the worker count, so ``workers=1`` and ``workers=8`` produce
    identical summaries (exact mean/variance/extremes combine; quantile
    buffers merge approximately).  ``consume`` streaming is unavailable
    when sharding.  ``_seed_offset`` is internal plumbing: it keeps a
    vector shard's per-chunk seed derivation aligned with the serial
    chunk sequence.

    Telemetry
    ---------
    ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`) records one
    run handle per sequential replication, or one per vector chunk (the
    chunk is the vector engine's unit of execution — its spans time the
    phase drivers, its series carries batch-aggregate samples).  Sharded
    runs give each shard a fresh collector and merge them back in shard
    order, so the exported run ids are worker-count independent.

    ``trace=True`` turns on contact-level causal tracing (upgrading the
    scheduler to the event tier when none was requested): every
    replication extracts its critical path, and the summary gains
    ``critical_path_len`` / ``dilation`` streams.
    """
    # Imported here, not at module top: repro.analysis.runner imports this
    # module, so a top-level import of repro.analysis would be circular.
    from repro.analysis.stats import ReplicationSummary

    if reps < 1:
        raise ValueError(f"reps must be positive, got {reps}")
    if engine not in REPLICATION_ENGINES:
        raise ValueError(
            f"unknown replication engine {engine!r}; choose from {REPLICATION_ENGINES}"
        )
    spec = get_algorithm(algorithm)
    _check_task(spec, task)
    resolved_topology = resolve_topology(topology)
    _check_topology(spec, resolved_topology, direct_addressing)
    if task != BROADCAST_TASK:
        # Uniform knob validation across engines: the vector path calls a
        # batch runner directly (never TaskSpec.build), so validate here.
        get_task(task).validate_kwargs(task_kwargs)
    resolved = resolve_schedule(schedule)
    resolved_scheduler = resolve_scheduler(scheduler)
    if trace:
        # Contact tracing implies the event tier; a traced configuration
        # is therefore never vector-eligible (the check below sees a
        # non-None scheduler), and every replication extracts its own
        # critical path into the summary's per-rep streams.
        resolved_scheduler = (
            EventSchedulerSpec(trace=True)
            if resolved_scheduler is None
            else _dc_replace(resolved_scheduler, trace=True)
        )
    batch_runner = spec.batch_runner_for(task)
    # Restricted topologies ride the vector engine when the runner
    # advertises batched neighbor sampling (global direct addressing
    # only — the batched relays deliver without a reachability check).
    topology_ok = resolved_topology.complete or (
        getattr(batch_runner, "supports_topology", False)
        and direct_addressing == "global"
    )
    # The event tier rides the vector engine through the batched clock
    # overlay (:class:`repro.sim.schedule.BatchClockOverlay`) when the
    # runner folds its contacts and the delay model has a batched
    # sampler; tracing and event recording stay sequential.
    scheduler_reason = None
    if resolved_scheduler is not None:
        if not getattr(batch_runner, "supports_overlay", False):
            scheduler_reason = (
                f"the batch runner for {algorithm!r} (task {task!r}) does "
                "not fold contacts into the batched clock overlay"
            )
        elif resolved_scheduler.trace or resolved_scheduler.record_events:
            scheduler_reason = (
                "contact tracing / event recording needs the sequential "
                "event scheduler"
            )
        else:
            delay_model = resolved_scheduler.resolve_delay(resolved_topology)
            if not getattr(delay_model, "batchable", False):
                scheduler_reason = (
                    f"delay model {delay_model.name!r} has no batched "
                    "sampler (DelayModel.bind_batch)"
                )
    # The (R, n) executors assume at least one other node to dial;
    # single-node runs fall back to the sequential reset engine.
    vector_ok = (
        batch_runner is not None
        and resolved is None
        and scheduler_reason is None
        and not failures
        and n > 1
        and topology_ok
    )
    if engine == "vector" and not vector_ok:
        if resolved_scheduler is not None and scheduler_reason is not None:
            raise ValueError(
                f"vector engine unavailable with scheduler=event: "
                f"{scheduler_reason}; run it on the sequential tier with "
                "engine='reset'"
            )
        raise ValueError(
            f"vector engine unavailable for {algorithm!r} (task {task!r}) "
            "here: it needs a registered batch runner for the task and a "
            "zero-adversity, zero-failure configuration with n >= 2 on "
            "the complete graph (or a topology-capable runner under "
            "global addressing)"
        )
    fallback_reason = None
    if engine == "auto":
        if not vector_ok and resolved_scheduler is not None and scheduler_reason:
            fallback_reason = scheduler_reason
            _log.info(
                "engine=auto: falling back to the sequential reset engine "
                "(%s)",
                scheduler_reason,
            )
        engine = "vector" if vector_ok else "reset"

    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if consume is not None:
            raise ValueError(
                "workers= shards the replications across summaries; "
                "per-replication consume streaming is only available serially"
            )
        merged = _run_sharded(
            n=n,
            algorithm=algorithm,
            reps=reps,
            base_seed=base_seed,
            engine=engine,
            source=source,
            message_bits=message_bits,
            failures=failures,
            failure_pattern=failure_pattern,
            schedule=schedule,
            task=task,
            task_kwargs=task_kwargs,
            topology=topology,
            direct_addressing=direct_addressing,
            scheduler=resolved_scheduler,
            profile=profile,
            check_model=check_model,
            batch_elems=batch_elems,
            batch_runner=batch_runner,
            workers=workers,
            telemetry=telemetry,
            algorithm_kwargs=algorithm_kwargs,
        )
        if fallback_reason is not None:
            merged.extras["engine_fallback"] = fallback_reason
        return merged

    summary = ReplicationSummary(algorithm=algorithm, n=n, engine=engine, task=task)
    if fallback_reason is not None:
        summary.extras["engine_fallback"] = fallback_reason

    def feed(rep: int, seed: Optional[int], scalars: dict) -> None:
        summary.observe(**scalars)
        if consume is not None:
            consume({"rep": rep, "seed": seed, **scalars})

    if engine == "vector":
        # Batch runners whose work arrays are (R, n, w)-shaped (k-rumor:
        # w = k) declare the per-node weight so the element budget bounds
        # the true footprint, not just R * n.
        weigh = getattr(batch_runner, "elements_per_node", None)
        weight = weigh(dict(task_kwargs or {})) if weigh else 1
        runner_kwargs = {**(task_kwargs or {}), **algorithm_kwargs}
        if getattr(batch_runner, "uses_profile", False):
            resolved_profile = (
                get_profile(profile) if isinstance(profile, str) else profile
            )
            runner_kwargs.setdefault("profile", resolved_profile)
        graph = None
        if not resolved_topology.complete and resolved_topology.deterministic:
            # Deterministic graphs are identical across replications and
            # chunks; bind once (the rng is required but unconsumed).
            graph = resolved_topology.bind(n, make_rng(derive_seed(base_seed, "net")))
        done = 0
        while done < reps:
            take = batch_size(n, reps - done, batch_elems, elements_per_node=weight)
            rng = make_rng(derive_seed(base_seed, "vector", _seed_offset + done))
            if not resolved_topology.complete and not resolved_topology.deterministic:
                # Random graphs resample per chunk: replications within a
                # chunk share one instance (documented approximation of
                # the sequential engines' per-seed graphs).
                graph = resolved_topology.bind(
                    n, make_rng(derive_seed(base_seed, "vector-topo", _seed_offset + done))
                )
            chunk_kwargs = dict(runner_kwargs)
            if graph is not None:
                chunk_kwargs["graph"] = graph
            if resolved_scheduler is not None:
                # One overlay per chunk: rep i's delay stream is derived
                # from base_seed + (global rep index) exactly as the
                # sequential bind's, so the chunk plan (and the worker
                # count) never moves a replication's draws.
                chunk_kwargs["overlay"] = make_batch_overlay(
                    resolved_scheduler,
                    resolved_topology,
                    n,
                    take,
                    graph,
                    base_seed=base_seed,
                    first_rep=_seed_offset + done,
                )
            tel_run = None
            if telemetry is not None:
                tel_run = telemetry.begin_run(
                    {
                        "kind": "vector",
                        "algorithm": algorithm,
                        "task": task,
                        "n": n,
                        "reps": take,
                        "first_rep": _seed_offset + done,
                        "base_seed": base_seed,
                        "message_bits": message_bits,
                    }
                )
                if getattr(batch_runner, "supports_telemetry", False):
                    chunk_kwargs["telemetry"] = tel_run
            with maybe_span(tel_run, "chunk"):
                outcome = batch_runner(
                    n,
                    take,
                    rng,
                    message_bits=message_bits,
                    source=source,
                    **chunk_kwargs,
                )
            if tel_run is not None:
                telemetry.finish_run(tel_run, outcome=outcome)
            for i in range(outcome.reps):
                feed(done + i, None, outcome.rep_scalars(i))
            done += take
        return summary

    if engine == "reset":
        replication = ReplicationEngine(
            n,
            algorithm,
            source=source,
            message_bits=message_bits,
            failures=failures,
            failure_pattern=failure_pattern,
            schedule=resolved,
            task=task,
            task_kwargs=task_kwargs,
            topology=resolved_topology,
            direct_addressing=direct_addressing,
            scheduler=resolved_scheduler,
            profile=profile,
            check_model=check_model,
            **algorithm_kwargs,
        )

        def run_one(seed: int) -> AlgorithmReport:
            return replication.run(seed, telemetry=telemetry)

    else:  # rebuild — the legacy loop

        def run_one(seed: int) -> AlgorithmReport:
            return broadcast(
                n,
                algorithm,
                seed=seed,
                source=source,
                message_bits=message_bits,
                failures=failures,
                failure_pattern=failure_pattern,
                schedule=resolved,
                task=task,
                task_kwargs=task_kwargs,
                topology=resolved_topology,
                direct_addressing=direct_addressing,
                scheduler=resolved_scheduler,
                profile=profile,
                telemetry=telemetry,
                check_model=check_model,
                **algorithm_kwargs,
            )

    for rep in range(reps):
        seed = base_seed + rep
        report = run_one(seed)
        feed(rep, seed, report_scalars(report))
    return summary


#: Sequential-engine shard count cap: enough blocks to feed any sane
#: worker pool while keeping per-shard engine setup amortised.
MAX_SEQUENTIAL_SHARDS = 16


def _replication_shard(payload: dict):
    """Process-pool entry point: one shard of a sharded run (top-level so
    it pickles).  Returns ``(summary, shard_telemetry_or_None)`` — the
    shard's collector mutates in the worker process, so it must travel
    back with the summary."""
    summary = run_replications(**payload)
    return summary, payload.get("telemetry")


def _shard_plan(
    engine: str,
    n: int,
    reps: int,
    batch_elems: int,
    elements_per_node: int,
) -> list:
    """Contiguous ``(start, count)`` shard blocks.

    The plan is a pure function of the configuration (never the worker
    count): vector shards are exactly the serial engine's chunk
    sequence, sequential shards are balanced blocks, so any ``workers``
    value yields the same shard summaries in the same merge order.
    """
    if engine == "vector":
        plan = []
        done = 0
        while done < reps:
            take = batch_size(n, reps - done, batch_elems, elements_per_node)
            plan.append((done, take))
            done += take
        return plan
    shards = min(reps, MAX_SEQUENTIAL_SHARDS)
    sizes = [reps // shards + (1 if i < reps % shards else 0) for i in range(shards)]
    starts = [sum(sizes[:i]) for i in range(shards)]
    return list(zip(starts, sizes))


def _run_sharded(
    *,
    n: int,
    algorithm: str,
    reps: int,
    base_seed: int,
    engine: str,
    source: Optional[int],
    message_bits: int,
    failures: float,
    failure_pattern: str,
    schedule: "AdversitySchedule | str | None",
    task: str,
    task_kwargs: Optional[Dict[str, Any]],
    topology: "Topology | str | None",
    direct_addressing: str,
    scheduler: "EventSchedulerSpec | None",
    profile: "Profile | str",
    check_model: bool,
    batch_elems: int,
    batch_runner: Optional[Callable],
    workers: int,
    telemetry: "Optional[Telemetry]",
    algorithm_kwargs: Dict[str, Any],
) -> "ReplicationSummary":
    """Split ``reps`` into shard blocks, run each as its own (serial)
    ``run_replications``, merge the shard summaries (and shard telemetry
    collectors) in shard order."""
    from repro.analysis.stats import ReplicationSummary

    weigh = getattr(batch_runner, "elements_per_node", None)
    weight = weigh(dict(task_kwargs or {})) if weigh else 1
    common = dict(
        n=n,
        algorithm=algorithm,
        engine=engine,
        source=source,
        message_bits=message_bits,
        failures=failures,
        failure_pattern=failure_pattern,
        schedule=schedule,
        task=task,
        task_kwargs=task_kwargs,
        topology=topology,
        direct_addressing=direct_addressing,
        scheduler=scheduler,
        profile=profile,
        check_model=check_model,
        batch_elems=batch_elems,
        workers=None,
        **algorithm_kwargs,
    )
    payloads = []
    for start, count in _shard_plan(engine, n, reps, batch_elems, weight):
        payload = dict(common, reps=count)
        if engine == "vector":
            # Vector shards replay the serial chunk sequence: same base
            # seed, chunk-aligned derivation offset.
            payload.update(base_seed=base_seed, _seed_offset=start)
        else:
            # Sequential shards: replication i still runs seed
            # base_seed + i, exactly as the serial loop would.
            payload.update(base_seed=base_seed + start)
        if telemetry is not None:
            # Fresh per-shard collector; merged back below in shard
            # order, so run ids never depend on the worker count.
            payload["telemetry"] = telemetry.spawn()
        payloads.append(payload)

    if workers == 1 or len(payloads) == 1:
        shard_results = [_replication_shard(p) for p in payloads]
    else:
        # Imported lazily: the serial path stays free of executor setup.
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            shard_results = list(pool.map(_replication_shard, payloads))

    merged = ReplicationSummary(algorithm=algorithm, n=n, engine=engine, task=task)
    for shard, shard_telemetry in shard_results:
        merged.merge(shard)
        if telemetry is not None and shard_telemetry is not None:
            telemetry.merge(shard_telemetry)
    return merged


def report_scalars(report: AlgorithmReport) -> dict:
    """One report's figures in :meth:`ReplicationSummary.observe` shape."""
    scalars = {
        "rounds": report.rounds,
        "spread_rounds": report.spread_rounds,
        "messages_per_node": report.messages_per_node,
        "bits_per_node": report.bits_per_node,
        "max_fanin": report.max_fanin,
        "success": report.success,
    }
    if "task_error" in report.extras:
        scalars["task_error"] = float(report.extras["task_error"])
    if "task_error_repaired" in report.extras:
        scalars["task_error_repaired"] = float(report.extras["task_error_repaired"])
    if "sim_time" in report.extras:
        scalars["sim_time"] = float(report.extras["sim_time"])
    if "critical_path_len" in report.extras:
        scalars["critical_path_len"] = int(report.extras["critical_path_len"])
    if "dilation" in report.extras:
        scalars["dilation"] = float(report.extras["dilation"])
    return scalars
