"""GrowInitialClusters — seeding and PUSH-recruiting (Sections 4.1, 5.1).

Two variants:

* :func:`grow_initial_clusters_v1` (Algorithm 1, lines 6-10): sample a
  ``1/(C log n)`` fraction of nodes as singleton clusters, then run
  ``Theta(log log n)`` rounds of PUSH gossip in which unclustered receivers
  join a random pushing cluster.  Ends with ~90% of nodes clustered in
  clusters of size ``>= C' log n`` (Lemma 5) — message-hungry but simple.

* :func:`grow_initial_clusters_v2` (Algorithm 2, lines 7-17): sample far
  fewer seeds, *measure growth* each iteration (ClusterSize), deactivate a
  cluster once it is big and its growth factor dips below ``2 - 1/log n``
  (the signature that a ``Theta(target_fraction)`` share of the network is
  clustered — Lemmas 10/11), and ClusterResize big clusters so no leader
  talks to too many followers.  Ends with only a ``Theta(x*)`` fraction
  clustered, which is what caps Cluster2's total message count.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.core.constants import Cluster1Params, Cluster2Params
from repro.core.primitives import (
    cluster_activate_all,
    cluster_resize,
    cluster_size,
    grow_push_round,
)
from repro.sim.engine import Simulator
from repro.sim.trace import Trace, null_trace


def seed_singleton_clusters(sim: Simulator, cl: Clustering, prob: float) -> int:
    """Algorithm 1 line 7 / Algorithm 2 line 8: each node independently
    becomes a singleton cluster with probability ``prob`` (a local coin —
    no communication round).  Returns the number of seeds."""
    if not 0.0 < prob <= 1.0:
        raise ValueError(f"seed probability must be in (0,1], got {prob}")
    coins = sim.rng.random(cl.n) < prob
    seeds = np.flatnonzero(coins & sim.net.alive)
    if len(seeds) == 0:
        # Tail event (prob (1-p)^n); fall back to one deterministic seed so
        # the algorithm remains well-defined, as a leader election would.
        seeds = sim.net.alive_indices()[:1]
    cl.seed_singletons(seeds)
    cl.active[seeds] = True
    return int(len(seeds))


def grow_initial_clusters_v1(
    sim: Simulator,
    cl: Clustering,
    params: Cluster1Params,
    trace: Trace = None,
) -> None:
    """Algorithm 1, Procedure GrowInitialClusters."""
    trace = trace if trace is not None else null_trace()
    with sim.metrics.phase("grow"):
        seeds = seed_singleton_clusters(sim, cl, params.seed_prob)
        trace.emit(sim.metrics.rounds, "grow.seeded", seeds=seeds)
        for _ in range(params.grow_rounds):
            joined = grow_push_round(sim, cl, active_only=False)
            trace.emit(
                sim.metrics.rounds,
                "grow.push",
                joined=joined,
                clustered=cl.clustered_count(),
            )


def grow_initial_clusters_v2(
    sim: Simulator,
    cl: Clustering,
    params: Cluster2Params,
    trace: Trace = None,
) -> None:
    """Algorithm 2, Procedure GrowInitialClusters (size-controlled)."""
    trace = trace if trace is not None else null_trace()
    with sim.metrics.phase("grow"):
        seeds = seed_singleton_clusters(sim, cl, params.seed_prob)
        cluster_activate_all(sim, cl)
        trace.emit(sim.metrics.rounds, "grow.seeded", seeds=seeds)

        prev_sizes = cl.sizes().astype(np.float64)
        for _ in range(params.grow_rounds_cap):
            if not cl.active[cl.leaders()].any():
                break
            grow_push_round(sim, cl, active_only=True)
            sizes = cluster_size(sim, cl).astype(np.float64)

            leaders = cl.leaders()
            big = sizes[leaders] >= params.big_size
            grew = sizes[leaders] / np.maximum(prev_sizes[leaders], 1.0)
            stalled = big & (grew < params.growth_stop_factor)
            cl.active[leaders[stalled]] = False
            # Big clusters still growing get split so no cluster (and no
            # leader's fan-in) runs away (Algorithm 2 line 17).
            if (big & ~stalled).any():
                cluster_resize(sim, cl, params.big_size)
                sizes = cl.sizes().astype(np.float64)
            prev_sizes = sizes
            trace.emit(
                sim.metrics.rounds,
                "grow.push",
                clustered=cl.clustered_count(),
                clusters=cl.cluster_count(),
                active=int(cl.active[cl.leaders()].sum()),
                stalled=int(stalled.sum()),
            )
        cl.active[:] = False
