"""Cluster2 — optimal rounds *and* messages *and* bits (Algorithm 2).

Same recipe as Cluster1 with the message-thrift modifications of
Section 5.1:

1. **GrowInitialClusters** (size-controlled) — far fewer seeds
   (``1/(C log^4 n)``); clusters measure their own growth and stop
   recruiting once big and slowing, which self-limits the clustered
   population to a ``Theta(1/log n)`` fraction (Lemma 11) so the chatty
   phases only ever involve ``o(n)`` senders per round.
2. **SquareClusters** — as Cluster1 but merging into a *random* received
   ID; growth per iteration is ``Theta(s^2/log n) = omega(s^1.5)``, still
   ``Theta(log log n)`` iterations (Lemma 12).
3. **MergeAllClusters** — unchanged (Lemma 7).
4. **BoundedClusterPush** — the giant cluster PUSH-expands to a constant
   fraction of the network, stopping at growth < 1.1 (Lemma 13); this is
   what makes the final PULL phase O(n)-message.
5. **UnclusteredNodesPull** + **ClusterShare(message)**.

Together: ``O(log log n)`` rounds, ``O(1)`` messages/node, ``O(nb)`` bits
(Theorem 2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.clustering import Clustering
from repro.core.constants import LAPTOP, Cluster2Params, Profile
from repro.core.grow import grow_initial_clusters_v2
from repro.core.merge_phase import merge_all_clusters
from repro.core.primitives import cluster_share_rumor
from repro.core.pull_phase import bounded_cluster_push, unclustered_nodes_pull
from repro.core.result import AlgorithmReport, report_from_sim
from repro.core.square import square_clusters_v2
from repro.registry import (
    register_algorithm,
    register_batch_runner,
    register_task_transport,
)
from repro.sim.batch_cluster import batched_cluster2
from repro.sim.engine import Simulator
from repro.sim.trace import Trace, null_trace
from repro.tasks.transports import run_cluster_task


@register_algorithm(
    "cluster2",
    category="core",
    uses_profile=True,
    kwargs=("params",),
    doc="Algorithm 2: optimal rounds, messages and bits (Theorem 2).",
)
def cluster2(
    sim: Simulator,
    source: int = 0,
    *,
    profile: Profile = LAPTOP,
    params: Optional[Cluster2Params] = None,
    trace: Trace = None,
) -> AlgorithmReport:
    """Run Cluster2 and broadcast the rumor held by ``source``.

    See :func:`repro.core.cluster1.cluster1` for the common parameters.
    """
    trace = trace if trace is not None else null_trace()
    p = params if params is not None else profile.cluster2(sim.net.n)
    cl = Clustering(sim.net)
    if sim.telemetry is not None:
        sim.telemetry.add_probe("clusters", lambda s, cl=cl: float(cl.cluster_count()))

    grow_initial_clusters_v2(sim, cl, p, trace)
    square_report = square_clusters_v2(sim, cl, p, trace)
    merge_reps = merge_all_clusters(sim, cl, reps=p.merge_reps, trace=trace)
    bounded_cluster_push(
        sim,
        cl,
        growth_stop=p.bounded_push_growth_stop,
        rounds_cap=p.bounded_push_rounds_cap,
        trace=trace,
    )
    unclustered_nodes_pull(sim, cl, p.pull_rounds, trace)

    informed = np.zeros(sim.net.n, dtype=bool)
    if sim.net.alive[source]:
        informed[source] = True
    with sim.metrics.phase("share"):
        informed = cluster_share_rumor(sim, cl, informed)

    trace.emit(sim.metrics.rounds, "done", clusters=cl.cluster_count())
    return report_from_sim(
        "cluster2",
        sim,
        informed,
        trace,
        clustering=cl,
        square_iterations=square_report.iterations,
        merge_reps=merge_reps,
        final_clusters=cl.cluster_count(),
    )


@register_task_transport("cluster2")
def cluster2_task_transport(
    sim: Simulator,
    state,
    *,
    profile: Profile = LAPTOP,
    params: Optional[Cluster2Params] = None,
    trace: Trace = None,
) -> AlgorithmReport:
    """Cluster2's structure as a task transport: the message-thrifty
    construction (grow → square → merge → bounded push → pull) assembles
    the spanning cluster, then the generic gather/mix/scatter/catch-up
    pipeline of :func:`repro.tasks.transports.run_cluster_task` computes
    the task over it."""
    p = params if params is not None else profile.cluster2(sim.net.n)

    def build(sim: Simulator, cl: Clustering, trace: Trace) -> None:
        grow_initial_clusters_v2(sim, cl, p, trace)
        square_clusters_v2(sim, cl, p, trace)
        merge_all_clusters(sim, cl, reps=p.merge_reps, trace=trace)
        bounded_cluster_push(
            sim,
            cl,
            growth_stop=p.bounded_push_growth_stop,
            rounds_cap=p.bounded_push_rounds_cap,
            trace=trace,
        )
        unclustered_nodes_pull(sim, cl, p.pull_rounds, trace)

    return run_cluster_task(sim, state, build, trace=trace)


# The scale tier's (R, n) vectorisation of this algorithm (statistically
# validated against this module's sequential path, which stays the
# fingerprint reference).
register_batch_runner("cluster2")(batched_cluster2)
