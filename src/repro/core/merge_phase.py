"""MergeAllClusters / MergeClusters — the final coalescing (Sections 4.1, 7).

:func:`merge_all_clusters` (Algorithms 1/2): every cluster ClusterPUSHes
its ID; every cluster merges into the smallest ID it received.  The
globally smallest-ID cluster never merges and absorbs everything; the
paper's "two repetitions" suffice w.h.p. asymptotically, and we allow a
small capped number of extra repetitions for small-``n`` tail events
(counted — they keep the round-complexity O(1) for this phase; DESIGN.md
substitution 4).

:func:`merge_to_delta_clusters` (Algorithm 4, Procedure MergeClusters):
instead of coalescing to one cluster, activate clusters with probability
``10 s / (Δ/C'')`` and have inactive clusters join a *uniformly random*
received active ID, which spreads them evenly — each active cluster ends
up with ``Theta(Δ/C'' / s)`` recruits, i.e. size ``Theta(Δ/C'')``.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import Clustering
from repro.core.constants import Cluster3Params
from repro.core.primitives import cluster_activate, cluster_merge, cluster_push
from repro.sim.delivery import NOTHING
from repro.sim.engine import Simulator
from repro.sim.trace import Trace, null_trace


def merge_all_clusters(
    sim: Simulator,
    cl: Clustering,
    *,
    reps: int = 2,
    trace: Trace = None,
) -> int:
    """Algorithms 1/2, Procedure MergeAllClusters.

    Returns the number of repetitions actually used (2 w.h.p.; up to
    ``reps`` at small n — extra repetitions only run while more than one
    cluster remains).
    """
    trace = trace if trace is not None else null_trace()
    uid = sim.net.uid
    used = 0
    mandatory = min(2, max(1, reps))  # the paper's "two repetitions"
    with sim.metrics.phase("merge-all"):
        for rep in range(max(1, reps)):
            if rep >= mandatory and cl.cluster_count() <= 1:
                break
            used += 1
            senders = np.flatnonzero(cl.clustered_mask())
            outcome = cluster_push(
                sim, cl, senders=senders, reduce="min", label="MergeAllPush"
            )
            # Merge towards strictly smaller uids only: acyclic by
            # construction, and the smallest-ID cluster stays put.
            leaders = cl.leaders()
            receipt = outcome.leader_receipt
            new_leader = np.full(cl.n, NOTHING, dtype=np.int64)
            got = leaders[receipt[leaders] != NOTHING]
            better = got[uid[receipt[got]] < uid[got]]
            new_leader[better] = receipt[better]
            merged = cluster_merge(sim, cl, new_leader)
            trace.emit(
                sim.metrics.rounds,
                "merge-all.rep",
                rep=rep,
                merged=merged,
                clusters=cl.cluster_count(),
            )
    return used


def merge_to_delta_clusters(
    sim: Simulator,
    cl: Clustering,
    params: Cluster3Params,
    current_size: int,
    trace: Trace = None,
) -> None:
    """Algorithm 4, Procedure MergeClusters.

    ``current_size`` is the nominal cluster size ``s`` reached by
    SquareClusters; activation probability is
    ``merge_activate_coeff * s / target_size`` (paper: ``10 s / (Δ/C'')``),
    so roughly one cluster in ``target_size/(10 s)`` becomes a recruiter
    and grows to ``~target_size/10`` — within a constant of the Θ(Δ)
    target, which BoundedClusterPush and the final resize then normalise.
    """
    trace = trace if trace is not None else null_trace()
    with sim.metrics.phase("merge-delta"):
        p = min(1.0, params.merge_activate_coeff * current_size / params.target_size)
        cluster_activate(sim, cl, p)
        leaders = cl.leaders()
        if len(leaders) and not cl.active[leaders].any():
            cl.active[sim.net.min_uid_index(leaders)] = True
        senders = np.flatnonzero(cl.active_member_mask())
        outcome = cluster_push(
            sim, cl, senders=senders, reduce="any", label="MergeDeltaPush"
        )
        new_leader = np.where(cl.active, NOTHING, outcome.leader_receipt)
        cluster_merge(sim, cl, new_leader)
        trace.emit(
            sim.metrics.rounds,
            "merge-delta",
            activate_prob=round(p, 4),
            clusters=cl.cluster_count(),
        )
