"""Cluster3(Δ) — computing a Θ(Δ)-clustering (Algorithm 4, Section 7).

Direct addressing lets one node answer up to ``n-1`` requests per round;
Section 7 studies capping that fan-in at ``Δ``.  Cluster3 computes a
*Δ-clustering* — every node clustered, all cluster sizes Θ(Δ) — in
``O(log log n)`` rounds and O(n) messages while never having a node talk to
more than Δ peers in a round (Theorem 18).  The clustering is then the
substrate for :mod:`repro.core.cluster_push_pull`'s
``O(log n / log Δ)``-round broadcast, matching the Lemma 16 lower bound.

Recipe: Cluster2's grow and square phases, stopped early at size
``sqrt(Δ log n)/C''`` — then one activate/push/random-merge round lifts
sizes to ``Θ(Δ/C'')`` (Procedure MergeClusters), BoundedClusterPush
recruits the unclustered majority under a continuous ClusterResize that
keeps sizes (hence leader fan-in) bounded, UnclusteredNodesPull catches
stragglers, and a final ClusterResize normalises.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.clustering import Clustering
from repro.core.constants import LAPTOP, Cluster3Params, Profile
from repro.core.grow import grow_initial_clusters_v2
from repro.core.merge_phase import merge_to_delta_clusters
from repro.core.primitives import cluster_resize
from repro.core.pull_phase import bounded_cluster_push, unclustered_nodes_pull
from repro.core.square import square_clusters_v2
from repro.sim.engine import Simulator
from repro.sim.trace import Trace, null_trace


@dataclass
class DeltaClusteringReport:
    """Shape of the Δ-clustering Cluster3 produced."""

    delta: int
    target_size: int
    clusters: int
    min_size: int
    max_size: int
    unclustered: int
    rounds: int
    messages: int
    max_fanin: int

    @property
    def all_clustered(self) -> bool:
        return self.unclustered == 0

    @property
    def sizes_within_theta_delta(self) -> bool:
        """Sizes within [target/2, 2*target] — the Θ(Δ) guarantee with the
        constants of our profile (Definition 1 up to C'')."""
        return self.min_size >= max(1, self.target_size // 2) and (
            self.max_size <= 2 * self.target_size
        )


def cluster3(
    sim: Simulator,
    delta: int,
    *,
    profile: Profile = LAPTOP,
    params: Optional[Cluster3Params] = None,
    trace: Trace = None,
) -> "tuple[Clustering, DeltaClusteringReport]":
    """Compute a Θ(Δ)-clustering (Algorithm 4).

    Requires ``delta >= 8`` (the paper assumes ``Δ = log^{ω(1)} n``; below
    ~8 the Θ(Δ) size bands collapse) and ``delta <= n**0.9`` (Section 7's
    convention — for larger Δ just run Cluster2).
    """
    trace = trace if trace is not None else null_trace()
    n = sim.net.n
    if delta < 8:
        raise ValueError(f"delta must be >= 8, got {delta}")
    if delta > int(n**0.9):
        raise ValueError(
            f"delta={delta} too large for n={n}; use Cluster2 instead (paper §7)"
        )
    p3 = params if params is not None else profile.cluster3(n, delta)
    p2 = profile.cluster2(n)
    # The paper requires Δ = log^{ω(1)} n: Δ must dominate the polylog
    # cluster sizes of the grow phase, else their coordination fan-in
    # already exceeds Δ.  The laptop-scale analogue of that regime floor:
    if p3.target_size < p2.big_size:
        min_delta = int(math.ceil(delta / max(p3.target_size, 1)) * p2.big_size)
        raise ValueError(
            f"delta={delta} is below the Δ = log^ω(1) n regime for n={n}: "
            f"need Δ/C'' = {p3.target_size} >= grow-phase cluster size "
            f"{p2.big_size} (use delta >= {min_delta})"
        )
    cl = Clustering(sim.net)
    if sim.telemetry is not None:
        sim.telemetry.add_probe("clusters", lambda s, cl=cl: float(cl.cluster_count()))

    grow_initial_clusters_v2(sim, cl, p2, trace)
    square_report = square_clusters_v2(sim, cl, p2, trace, stop_at=p3.square_until)
    # Nominal size reached by the squaring loop (>= its floor even when the
    # loop body never ran because the floor already exceeded the target).
    s = max(p2.square_floor, square_report.final_nominal_size)
    s = min(s, max(2, p3.target_size))  # never activate with prob > ~1

    merge_to_delta_clusters(sim, cl, p3, s, trace)
    bounded_cluster_push(
        sim,
        cl,
        growth_stop=p3.bounded_push_growth_stop,
        rounds_cap=p3.bounded_push_rounds_cap,
        resize_to=p3.target_size,
        trace=trace,
    )
    unclustered_nodes_pull(sim, cl, p3.pull_rounds, trace, resize_to=p3.target_size)
    with sim.metrics.phase("final-resize"):
        cluster_resize(sim, cl, p3.target_size)

    report = delta_clustering_report(sim, cl, p3)
    trace.emit(
        sim.metrics.rounds,
        "cluster3.done",
        clusters=report.clusters,
        min_size=report.min_size,
        max_size=report.max_size,
        unclustered=report.unclustered,
    )
    return cl, report


def delta_clustering_report(
    sim: Simulator, cl: Clustering, params: Cluster3Params
) -> DeltaClusteringReport:
    """Measure the clustering against the Θ(Δ) definition."""
    leaders = cl.leaders()
    sizes = cl.sizes()[leaders] if len(leaders) else np.zeros(0, dtype=np.int64)
    return DeltaClusteringReport(
        delta=params.delta,
        target_size=params.target_size,
        clusters=int(len(leaders)),
        min_size=int(sizes.min()) if len(sizes) else 0,
        max_size=int(sizes.max()) if len(sizes) else 0,
        unclustered=int(len(cl.unclustered())),
        rounds=sim.metrics.rounds,
        messages=sim.metrics.messages,
        max_fanin=sim.metrics.max_fanin,
    )
