"""The Ω(log log n) lower bound (paper, Section 6).

Theorem 3/15: even with unlimited message sizes, non-address-oblivious
behaviour, and contacting arbitrarily many *known* nodes per round, any
algorithm needs ``>= log log n - log log log n - omega(1)`` rounds to
broadcast w.h.p.

The proof object is the *knowledge graph* ``K_t`` (who knows whose ID at
the start of round ``t``).  With ``G_i`` the graph of random contacts
potentially sampled in round ``i`` (each node gets one fresh uniform
sample per round), Lemma 14 shows

    ``K_0 = {}``,  ``K_{t+1} ⊆ (K_t ∪ G_{t+1})^2``,  hence
    ``K_T ⊆ (G_1 ∪ ... ∪ G_T)^{2^T}``

(``H^j`` connects nodes at distance ≤ j in H): one round can at best
*square* reach, because contacting everyone you know only teaches you your
2-hop neighbourhood.  Broadcasting from ``u`` in ``T`` rounds therefore
requires the ``2^T``-ball around ``u`` in the union graph
``K' = ∪_{i<=T} G_i`` — a random graph with ≤ 2Tn edges — to cover all
nodes, and such a sparse random graph has diameter
``Omega(log n / log log n) >> 2^T`` for ``T`` below the bound.

This module materialises exactly that object: it samples the union graph,
measures ball growth from the source, and reports the minimum feasible
``T`` — an *upper bound on any algorithm's power*, so measuring it above
``~0.99 log log n`` empirically witnesses the theorem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.rng import SeedLike, make_rng


def theorem3_bound(n: int) -> float:
    """``log2 log2 n - log2 log2 log2 n`` — the Theorem 15 threshold
    (the ``omega(1)`` slack is asymptotic; at laptop n it is the dominant
    correction, so we report the two leading terms)."""
    ll = math.log2(max(math.log2(max(n, 4)), 2.0))
    lll = math.log2(max(ll, 2.0))
    return ll - lll


def sample_union_graph(
    n: int, t: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of ``K' = G_1 ∪ ... ∪ G_t``.

    Each node samples one uniformly random contact per round; edges are
    undirected.  Returns ``(indptr, indices)``.
    """
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    srcs = np.tile(np.arange(n, dtype=np.int64), t)
    dsts = rng.integers(0, n, size=n * t, dtype=np.int64)
    return _csr_undirected(n, srcs, dsts)


def _csr_undirected(
    n: int, srcs: np.ndarray, dsts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetrise and pack an edge list into CSR (self-loops dropped)."""
    keep = srcs != dsts
    srcs, dsts = srcs[keep], dsts[keep]
    all_src = np.concatenate([srcs, dsts])
    all_dst = np.concatenate([dsts, srcs])
    order = np.argsort(all_src, kind="stable")
    all_src, all_dst = all_src[order], all_dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, all_src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, all_dst


def bfs_layers(
    indptr: np.ndarray, indices: np.ndarray, source: int, max_depth: Optional[int] = None
) -> np.ndarray:
    """Distance from ``source`` per node (-1 = unreachable), vectorised
    frontier BFS; stops after ``max_depth`` layers when given."""
    n = len(indptr) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier) and (max_depth is None or depth < max_depth):
        depth += 1
        # Gather all neighbours of the frontier.
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        starts = indptr[frontier]
        # Within-segment ranks: enumerate each frontier node's adjacency run.
        seg_off = np.repeat(np.cumsum(counts) - counts, counts)
        rank = np.arange(total) - seg_off
        offsets = np.repeat(starts, counts) + rank
        neigh = indices[offsets]
        neigh = neigh[dist[neigh] == -1]
        if len(neigh) == 0:
            break
        neigh = np.unique(neigh)
        dist[neigh] = depth
        frontier = neigh
    return dist


@dataclass
class BallGrowth:
    """Reach of the omniscient-best algorithm after each round.

    ``reach[t]`` is the number of nodes within distance ``2^t`` of the
    source in the union graph of ``t`` rounds of samples — an upper bound
    on how many nodes *any* algorithm can have informed after ``t``
    rounds (Lemma 14).
    """

    n: int
    source: int
    reach: List[int]

    @property
    def rounds_to_cover(self) -> Optional[int]:
        """First t with full coverage, or None."""
        for t, r in enumerate(self.reach):
            if r >= self.n:
                return t
        return None


def ball_growth(n: int, max_t: int, seed: SeedLike = 0, source: int = 0) -> BallGrowth:
    """Measure ``reach[t] = |B_{2^t}(source)|`` in ``∪_{i<=t} G_i``.

    The union graph is resampled cumulatively: round ``t`` adds one fresh
    sample per node, exactly as the model provides.
    """
    rng = make_rng(seed)
    reach: List[int] = [1]
    srcs_all = np.empty(0, dtype=np.int64)
    dsts_all = np.empty(0, dtype=np.int64)
    base = np.arange(n, dtype=np.int64)
    for t in range(1, max_t + 1):
        srcs_all = np.concatenate([srcs_all, base])
        dsts_all = np.concatenate([dsts_all, rng.integers(0, n, size=n, dtype=np.int64)])
        indptr, indices = _csr_undirected(n, srcs_all.copy(), dsts_all.copy())
        dist = bfs_layers(indptr, indices, source, max_depth=2**t)
        reach.append(int((dist >= 0).sum()))
        if reach[-1] >= n:
            break
    return BallGrowth(n=n, source=source, reach=reach)


def min_feasible_rounds(n: int, seed: SeedLike = 0, source: int = 0, max_t: int = 12) -> int:
    """Smallest ``T`` for which even an omniscient algorithm could inform
    everyone (full ``2^T``-ball coverage in the T-round union graph).

    Any gossip algorithm needs at least this many rounds on the same
    random samples; Theorem 15 says this exceeds ``~0.99 log log n``
    w.h.p., which bench E5 verifies empirically.
    """
    growth = ball_growth(n, max_t, seed=seed, source=source)
    covered = growth.rounds_to_cover
    if covered is None:
        raise RuntimeError(
            f"union graph of {max_t} rounds did not cover n={n}; raise max_t"
        )
    return covered


def knowledge_can_be_complete(n: int, t: int, seed: SeedLike = 0) -> bool:
    """Can ``K_t`` possibly be the complete graph? — iff the union graph
    has diameter ≤ ``2^t`` (Theorem 15's proof step).  Checked exactly via
    BFS from the eccentricity-maximising endpoint of a double sweep (the
    standard 2-sweep lower bound, then verified from that endpoint)."""
    rng = make_rng(seed)
    indptr, indices = sample_union_graph(n, t, rng)
    # Double sweep: BFS from 0, then from the farthest node found.
    d0 = bfs_layers(indptr, indices, 0)
    if (d0 < 0).any():
        return False
    far = int(np.argmax(d0))
    d1 = bfs_layers(indptr, indices, far)
    if (d1 < 0).any():
        return False
    # d1.max() lower-bounds the diameter; if it already exceeds 2^t the
    # answer is decisively no.  Otherwise check coverage from both sweeps'
    # extremes within the radius bound (conservative yes).
    ecc = int(d1.max())
    return ecc <= 2**t
