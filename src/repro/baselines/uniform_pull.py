"""Uniform PULL gossip.

Every *uninformed* node pulls from a uniformly random node each round.
Starting from a single informed node the growth is only ~2x per round
(each informed node is found by ~1 puller in expectation), but once a
constant fraction is informed the uninformed fraction *squares* per round
— the doubly-exponential endgame of Lemma 8 that Cluster1/2 exploit.
Completes in ``Theta(log n)`` rounds from one source.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import AlgorithmReport, report_from_sim
from repro.registry import register_algorithm
from repro.sim.engine import Simulator
from repro.sim.protocol import VectorProtocol, run_protocol
from repro.sim.trace import Trace, null_trace


class PullProtocol(VectorProtocol):
    """State: the informed mask.  Only uninformed nodes initiate."""

    name = "pull"

    def __init__(self, sim: Simulator, source: int) -> None:
        self.informed = np.zeros(sim.net.n, dtype=bool)
        if sim.net.alive[source]:
            self.informed[source] = True
        self._alive = sim.net.alive

    def step(self, sim: Simulator) -> None:
        pullers = np.flatnonzero(~self.informed & self._alive)
        dsts = sim.random_targets(pullers)
        with sim.round("pull") as r:
            answered = r.pull(
                pullers, dsts, sim.net.sizes.rumor_bits, self.informed[dsts]
            ).answered
        self.informed[pullers[answered]] = True

    def done(self) -> bool:
        return bool(self.informed[self._alive].all())

    def progress(self) -> float:
        alive = int(self._alive.sum())
        return float(self.informed[self._alive].sum() / alive) if alive else 1.0


def pull_round_cap(n: int) -> int:
    """The w.h.p. schedule: doubling start + squaring endgame + slack."""
    return math.ceil(1.5 * math.log2(max(n, 2))) + 8


@register_algorithm(
    "pull",
    category="baseline",
    kwargs=("max_rounds",),
    doc="Uniform PULL gossip: Θ(log n) rounds, cost in contacts not bits.",
)
def uniform_pull(
    sim: Simulator, source: int = 0, *, trace: Trace = None, max_rounds: int = None
) -> AlgorithmReport:
    """Run PULL gossip over its full w.h.p. schedule.

    Only uninformed nodes initiate, so the schedule tail is free of
    traffic once everyone is informed; PULL's cost is in *contacts*
    (requests), ``Theta(log n)`` per node, visible in
    ``metrics.total.pull_requests``.
    """
    trace = trace if trace is not None else null_trace()
    protocol = PullProtocol(sim, source)
    cap = max_rounds if max_rounds is not None else pull_round_cap(sim.net.n)
    with sim.metrics.phase("pull"):
        result = run_protocol(
            protocol, sim, max_rounds=cap, trace=trace, run_to_cap=True
        )
    return report_from_sim(
        "pull", sim, protocol.informed, trace, completion_round=result.completion_round
    )
