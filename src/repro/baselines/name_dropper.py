"""Name-Dropper [9] — resource discovery by gossiping neighbor lists.

Harchol-Balter, Leighton & Lewin (PODC 1999): starting from any weakly
connected "knows-about" topology, each round every node pushes its entire
known-ID list to one uniformly random *known* node; ``O(log^2 n)`` rounds
suffice for everyone to know everyone.  The classic direct-addressing
predecessor cited in Section 1 — included as a reference point and for the
knowledge-graph machinery it shares with the Section 6 lower bound.

Knowledge sets are Theta(n) per node at the end, so this module is meant
for small ``n`` (examples and tests use ``n <= 512``); the simulator
engine still accounts every pushed ID.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.registry import register_algorithm
from repro.sim.engine import Simulator
from repro.sim.trace import Trace, null_trace


@dataclass
class DiscoveryReport:
    """Outcome of a resource-discovery run."""

    algorithm: str
    n: int
    rounds: int
    messages: int
    bits: int
    complete: bool
    min_knowledge: int

    def __str__(self) -> str:
        return (
            f"{self.algorithm}(n={self.n}): rounds={self.rounds} "
            f"complete={self.complete} min_knowledge={self.min_knowledge}"
        )


def ring_topology(n: int) -> List[List[int]]:
    """A weakly connected seed topology: node i knows i+1 (mod n)."""
    return [[(i + 1) % n] for i in range(n)]


def random_tree_topology(n: int, rng: np.random.Generator) -> List[List[int]]:
    """Each node i > 0 knows one uniformly random earlier node."""
    return [[] if i == 0 else [int(rng.integers(0, i))] for i in range(n)]


@register_algorithm(
    "name-dropper",
    category="discovery",
    broadcastable=False,
    kwargs=("initial_knows", "max_rounds"),
    doc="Harchol-Balter et al. [9]: O(log² n)-round resource discovery.",
    # Resource discovery *is* learning the complete graph; a restricted
    # contact graph changes the problem statement, not the constants.
    complete_graph_only=True,
)
def name_dropper(
    sim: Simulator,
    initial_knows: Optional[Sequence[Sequence[int]]] = None,
    *,
    trace: Trace = None,
    max_rounds: int = None,
) -> DiscoveryReport:
    """Run Name-Dropper until everyone knows everyone (or the cap).

    ``initial_knows[i]`` is the list of nodes ``i`` initially knows
    (besides itself); defaults to a ring.  Pointer-doubling intuition: the
    known set roughly doubles its reach every ``O(log n)`` rounds, giving
    the ``O(log^2 n)`` bound of [9].
    """
    trace = trace if trace is not None else null_trace()
    n = sim.net.n
    if n > 4096:
        raise ValueError(
            f"name_dropper keeps Theta(n) knowledge per node; n={n} is too large"
        )
    knows: List[set] = [
        set(neigh) | {i}
        for i, neigh in enumerate(initial_knows or ring_topology(n))
    ]
    cap = (
        max_rounds
        if max_rounds is not None
        else 2 * math.ceil(math.log2(max(n, 2))) ** 2 + 10
    )
    id_bits = sim.net.sizes.id_bits

    rounds = 0
    with sim.metrics.phase("name-dropper"):
        while rounds < cap and any(len(k) < n for k in knows):
            rounds += 1
            srcs, dsts, sizes = [], [], []
            for v in sim.net.alive_indices():
                others = knows[v] - {int(v)}
                if not others:
                    continue
                target = list(others)[int(sim.rng.integers(0, len(others)))]
                srcs.append(int(v))
                dsts.append(target)
                sizes.append(len(knows[v]) * id_bits)
            with sim.round("name-dropper") as r:
                delivery = r.push(
                    np.array(srcs, dtype=np.int64),
                    np.array(dsts, dtype=np.int64),
                    np.array(sizes, dtype=np.int64),
                )
            for s, d in zip(delivery.srcs, delivery.dsts):
                knows[int(d)] |= knows[int(s)]
            trace.emit(
                sim.metrics.rounds,
                "name-dropper.round",
                min_knowledge=min(len(k) for k in knows),
            )

    alive = sim.net.alive_indices()
    min_knowledge = min(len(knows[int(v)]) for v in alive)
    return DiscoveryReport(
        algorithm="name-dropper",
        n=n,
        rounds=rounds,
        messages=sim.metrics.messages,
        bits=sim.metrics.bits,
        complete=all(len(knows[int(v)]) >= len(alive) for v in alive),
        min_knowledge=min_knowledge,
    )
