"""The median-counter algorithm of Karp et al. [10] (FOCS 2000).

``Theta(log n)`` rounds with only ``O(log log n)`` rumor transmissions per
node — the message-complexity benchmark Cluster2 beats (Theorem 2 sends
O(1) per node by exploiting direct addressing, which [10] does not have).

Each round every node calls one uniformly random partner; the call is a
bidirectional push-pull exchange of (rumor, state, counter).  States per
node:

* **uninformed** — pulls only; adopting the rumor enters B with counter 1;
* **B (counter m)** — pushes and pulls.  *Median rule*: if more than half
  of the informed partners it exchanged with this round have counter
  greater than m or are in state C, the counter increments.  Reaching
  ``ctr_max = ceil(log2 log2 n) + 4`` switches to C;
* **C** — keeps transmitting for another ``O(log log n)`` rounds, then
  goes quiet (D).

The doubly-logarithmic counter cap is what bounds per-node transmissions:
a node's counter lags the population median by O(1) w.h.p., and all
counters advance in lock-step once the rumor saturates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import AlgorithmReport, report_from_sim
from repro.registry import register_algorithm
from repro.sim.delivery import receive_counts
from repro.sim.engine import Simulator
from repro.sim.protocol import VectorProtocol, run_protocol
from repro.sim.trace import Trace, null_trace

# Node states.
UNINFORMED, STATE_B, STATE_C, STATE_D = 0, 1, 2, 3


class MedianCounterProtocol(VectorProtocol):
    """Vectorised median-counter state machine."""

    name = "median-counter"

    def __init__(self, sim: Simulator, source: int) -> None:
        n = sim.net.n
        ll = math.log2(max(math.log2(max(n, 4)), 2.0))
        self.ctr_max = math.ceil(ll) + 1
        self.c_rounds = math.ceil(ll) + 1
        self.state = np.zeros(n, dtype=np.int8)
        self.counter = np.zeros(n, dtype=np.int64)
        self.c_countdown = np.zeros(n, dtype=np.int64)
        if sim.net.alive[source]:
            self.state[source] = STATE_B
            self.counter[source] = 1
        self._alive = sim.net.alive

    # ------------------------------------------------------------------

    def step(self, sim: Simulator) -> None:
        n = sim.net.n
        rumor_bits = sim.net.sizes.rumor_bits + sim.net.sizes.counter()
        alive = self._alive
        transmitting = ((self.state == STATE_B) | (self.state == STATE_C)) & alive
        quiet = ~transmitting & alive

        callers = np.flatnonzero(alive & (self.state != STATE_D))
        partners = sim.random_targets(callers)

        push_mask = transmitting[callers]
        with sim.round("median-counter") as r:
            # Forward half: transmitting callers push the rumor.
            delivery = r.push(
                callers[push_mask], partners[push_mask], rumor_bits
            )
            # Return half: any caller whose partner transmits receives the
            # rumor back on the same channel (free-riding pull).
            answered = r.pull(
                callers,
                partners,
                rumor_bits,
                transmitting[partners],
                counts_initiation=False,
            ).answered

        # --- Collect, per node, the counters it was exposed to ---------
        # Exposures: pushes received, plus the pull responses received.
        exp_dst = np.concatenate([delivery.dsts, callers[answered]])
        exp_src = np.concatenate([delivery.srcs, partners[answered]])

        # New infections.
        newly = np.zeros(n, dtype=bool)
        newly[exp_dst] = True
        newly &= self.state == UNINFORMED
        # Median rule for state-B nodes: count exposures with counter not
        # smaller than own (or from state C), vs. total exposures.  The >=
        # is essential: at saturation all counters are equal and must
        # advance in lock-step so the rumor ages out in O(log log n) rounds.
        in_b = self.state == STATE_B
        greater = (
            (self.counter[exp_src] >= self.counter[exp_dst])
            | (self.state[exp_src] == STATE_C)
        ).astype(np.int64)
        total_exposures = receive_counts(n, exp_dst)
        greater_exposures = np.bincount(exp_dst, weights=greater, minlength=n)
        advance = in_b & (2 * greater_exposures > total_exposures)

        self.state[newly] = STATE_B
        self.counter[newly] = 1
        self.counter[advance] += 1
        to_c = in_b & (self.counter > self.ctr_max)
        self.state[to_c] = STATE_C
        self.c_countdown[to_c] = self.c_rounds
        in_c = self.state == STATE_C
        self.c_countdown[in_c] -= 1
        self.state[in_c & (self.c_countdown <= 0)] = STATE_D

    def done(self) -> bool:
        informed = self.state != UNINFORMED
        if not informed[self._alive].all():
            return False
        # Quiescence: nobody transmitting any more.
        active = (self.state == STATE_B) | (self.state == STATE_C)
        return not active[self._alive].any()

    def informed_mask(self) -> np.ndarray:
        return (self.state != UNINFORMED) & self._alive

    def progress(self) -> float:
        alive = int(self._alive.sum())
        return float(self.informed_mask().sum() / alive) if alive else 1.0


def median_counter_round_cap(n: int) -> int:
    """W.h.p. cap: O(log n) spreading plus the counter run-out."""
    return math.ceil(3 * math.log2(max(n, 2))) + 20


@register_algorithm(
    "median-counter",
    category="baseline",
    kwargs=("max_rounds",),
    doc="Karp et al. [10]: Θ(log n) rounds, O(log log n) msgs/node.",
    # The median-counter stopping rule compares counter medians against
    # phase thresholds derived from uniform *global* sampling; on a
    # restricted contact graph those thresholds are wrong (nodes would
    # stop early or never), not merely slow, so the pair is refused.
    complete_graph_only=True,
)
def median_counter(
    sim: Simulator, source: int = 0, *, trace: Trace = None, max_rounds: int = None
) -> AlgorithmReport:
    """Run the median-counter algorithm to quiescence."""
    trace = trace if trace is not None else null_trace()
    protocol = MedianCounterProtocol(sim, source)
    cap = max_rounds if max_rounds is not None else median_counter_round_cap(sim.net.n)
    with sim.metrics.phase("median-counter"):
        run_protocol(protocol, sim, max_rounds=cap, trace=trace)
    return report_from_sim(
        "median-counter",
        sim,
        protocol.informed_mask(),
        trace,
        ctr_max=protocol.ctr_max,
    )
