"""Uniform PUSH gossip — the classic baseline [12].

Every informed node pushes the rumor to a uniformly random node each
round.  Informs all nodes in ``log2 n + ln n + o(log n)`` rounds w.h.p.
(Pittel); every informed node transmits every round, so the
message-complexity is ``Theta(log n)`` per node — the regime both [10] and
this paper improve on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import AlgorithmReport, report_from_sim
from repro.registry import register_algorithm, register_task_transport
from repro.sim.engine import Simulator
from repro.sim.protocol import VectorProtocol, run_protocol
from repro.sim.trace import Trace, null_trace
from repro.tasks.transports import run_uniform_task


class PushProtocol(VectorProtocol):
    """State: the informed mask."""

    name = "push"

    def __init__(self, sim: Simulator, source: int) -> None:
        self.informed = np.zeros(sim.net.n, dtype=bool)
        if sim.net.alive[source]:
            self.informed[source] = True
        self._alive = sim.net.alive

    def step(self, sim: Simulator) -> None:
        senders = np.flatnonzero(self.informed & self._alive)
        dsts = sim.random_targets(senders)
        with sim.round("push") as r:
            delivery = r.push(senders, dsts, sim.net.sizes.rumor_bits)
        self.informed[delivery.dsts] = True

    def done(self) -> bool:
        return bool(self.informed[self._alive].all())

    def progress(self) -> float:
        alive = int(self._alive.sum())
        return float(self.informed[self._alive].sum() / alive) if alive else 1.0


def push_round_cap(n: int) -> int:
    """The w.h.p. schedule: ``log2 n + ln n + O(1)`` rounds (Pittel).

    The additive slack absorbs the lower-order deviations, which at small
    ``n`` are a noticeable fraction of the total.
    """
    return math.ceil(math.log2(max(n, 2)) + math.log(max(n, 2))) + 12


@register_algorithm(
    "push",
    category="baseline",
    kwargs=("max_rounds",),
    doc="Classic uniform PUSH gossip [12]: Θ(log n) rounds and msgs/node.",
)
def uniform_push(
    sim: Simulator, source: int = 0, *, trace: Trace = None, max_rounds: int = None
) -> AlgorithmReport:
    """Run PUSH gossip over its full w.h.p. schedule.

    PUSH has no local stopping rule, so informed nodes transmit for the
    whole ``Theta(log n)`` schedule — that is its ``Theta(log n)``
    message-complexity per node.  The report's ``spread_rounds`` records
    when everyone was actually informed.
    """
    trace = trace if trace is not None else null_trace()
    protocol = PushProtocol(sim, source)
    cap = max_rounds if max_rounds is not None else push_round_cap(sim.net.n)
    with sim.metrics.phase("push"):
        result = run_protocol(
            protocol, sim, max_rounds=cap, trace=trace, run_to_cap=True
        )
    return report_from_sim(
        "push", sim, protocol.informed, trace, completion_round=result.completion_round
    )


@register_task_transport("push")
def push_task_transport(
    sim: Simulator, state, *, trace: Trace = None, max_rounds: int = None
) -> AlgorithmReport:
    """PUSH's contact pattern generalised to any task: content holders
    push, everyone else stays idle (no pull lane)."""
    return run_uniform_task(
        sim, state, mode="push", max_rounds=max_rounds, trace=trace
    )
