"""Baseline gossip algorithms the paper compares against.

* :mod:`repro.baselines.uniform_push` / :mod:`repro.baselines.uniform_pull`
  / :mod:`repro.baselines.push_pull` — the classic ``Theta(log n)``-round
  protocols of the random phone call model [12, Pittel 1987];
* :mod:`repro.baselines.median_counter` — Karp, Schindelhauer, Shenker,
  Vöcking [10, FOCS 2000]: ``Theta(log n)`` rounds with only
  ``O(log log n)`` messages per node;
* :mod:`repro.baselines.avin_elsasser` — a documented reconstruction of
  Avin & Elsässer [1, DISC 2013]: ``Theta(sqrt(log n))`` rounds with
  ``Theta(sqrt(log n))`` messages per node using direct addressing;
* :mod:`repro.baselines.name_dropper` — Harchol-Balter, Leighton, Lewin
  [9, PODC 1999] resource discovery (``O(log^2 n)`` rounds), included as
  the classic direct-addressing point of reference.
"""

from repro.baselines.avin_elsasser import avin_elsasser
from repro.baselines.median_counter import median_counter
from repro.baselines.name_dropper import name_dropper
from repro.baselines.push_pull import uniform_push_pull
from repro.baselines.uniform_pull import uniform_pull
from repro.baselines.uniform_push import uniform_push

__all__ = [
    "avin_elsasser",
    "median_counter",
    "name_dropper",
    "uniform_pull",
    "uniform_push",
    "uniform_push_pull",
]
