"""Uniform PUSH-PULL gossip.

Each round every node contacts one uniformly random node: informed nodes
push the rumor, uninformed nodes pull it.  Completes in
``log3 n + O(log log n)`` rounds [10]; message-complexity ``Theta(log n)``
per node because the uninformed keep pulling (mostly unsuccessfully) all
along and the informed keep pushing until the end.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import AlgorithmReport, report_from_sim
from repro.registry import register_algorithm
from repro.sim.engine import Simulator
from repro.sim.protocol import VectorProtocol, run_protocol
from repro.sim.trace import Trace, null_trace


class PushPullProtocol(VectorProtocol):
    """State: the informed mask.  Everyone initiates every round."""

    name = "push-pull"

    def __init__(self, sim: Simulator, source: int) -> None:
        self.informed = np.zeros(sim.net.n, dtype=bool)
        if sim.net.alive[source]:
            self.informed[source] = True
        self._alive = sim.net.alive

    def step(self, sim: Simulator) -> None:
        rumor_bits = sim.net.sizes.rumor_bits
        informed_now = self.informed.copy()  # synchronous semantics
        senders = np.flatnonzero(informed_now & self._alive)
        pullers = np.flatnonzero(~informed_now & self._alive)
        with sim.round("push-pull") as r:
            delivery = r.push(senders, sim.random_targets(senders), rumor_bits)
            pdsts = sim.random_targets(pullers)
            answered = r.pull(pullers, pdsts, rumor_bits, informed_now[pdsts]).answered
        self.informed[delivery.dsts] = True
        self.informed[pullers[answered]] = True

    def done(self) -> bool:
        return bool(self.informed[self._alive].all())

    def progress(self) -> float:
        alive = int(self._alive.sum())
        return float(self.informed[self._alive].sum() / alive) if alive else 1.0


def push_pull_round_cap(n: int) -> int:
    """The w.h.p. schedule around ``log3 n + O(log log n)`` [10]."""
    return math.ceil(math.log(max(n, 2), 3)) + 10


@register_algorithm(
    "push-pull",
    category="baseline",
    kwargs=("max_rounds",),
    doc="PUSH-PULL gossip [10]: log3 n + O(log log n) rounds.",
)
def uniform_push_pull(
    sim: Simulator, source: int = 0, *, trace: Trace = None, max_rounds: int = None
) -> AlgorithmReport:
    """Run PUSH-PULL gossip over its full w.h.p. schedule.

    No local stopping rule: informed nodes push for the whole
    ``Theta(log n)`` schedule, giving the ``Theta(log n)`` per-node
    message-complexity that [10]'s median-counter rule then cuts to
    ``O(log log n)``.
    """
    trace = trace if trace is not None else null_trace()
    protocol = PushPullProtocol(sim, source)
    cap = max_rounds if max_rounds is not None else push_pull_round_cap(sim.net.n)
    with sim.metrics.phase("push-pull"):
        result = run_protocol(
            protocol, sim, max_rounds=cap, trace=trace, run_to_cap=True
        )
    return report_from_sim(
        "push-pull",
        sim,
        protocol.informed,
        trace,
        completion_round=result.completion_round,
    )
