"""Uniform PUSH-PULL gossip.

Each round every node contacts one uniformly random node: informed nodes
push the rumor, uninformed nodes pull it.  Completes in
``log3 n + O(log log n)`` rounds [10]; message-complexity ``Theta(log n)``
per node because the uninformed keep pulling (mostly unsuccessfully) all
along and the informed keep pushing until the end.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import AlgorithmReport, report_from_sim
from repro.registry import (
    register_algorithm,
    register_batch_runner,
    register_task_transport,
)
from repro.sim.batch import (
    BatchOutcome,
    batched_k_rumor,
    batched_min_max,
    batched_push_sum,
    per_rep_max_fanin,
    random_targets_batch,
    resolve_sources,
)
from repro.sim.engine import Simulator
from repro.sim.protocol import VectorProtocol, run_protocol
from repro.sim.trace import Trace, null_trace
from repro.tasks.transports import run_uniform_task


class PushPullProtocol(VectorProtocol):
    """State: the informed mask.  Everyone initiates every round."""

    name = "push-pull"

    def __init__(self, sim: Simulator, source: int) -> None:
        self.informed = np.zeros(sim.net.n, dtype=bool)
        if sim.net.alive[source]:
            self.informed[source] = True
        self._alive = sim.net.alive

    def step(self, sim: Simulator) -> None:
        rumor_bits = sim.net.sizes.rumor_bits
        informed_now = self.informed.copy()  # synchronous semantics
        senders = np.flatnonzero(informed_now & self._alive)
        pullers = np.flatnonzero(~informed_now & self._alive)
        with sim.round("push-pull") as r:
            delivery = r.push(senders, sim.random_targets(senders), rumor_bits)
            pdsts = sim.random_targets(pullers)
            answered = r.pull(pullers, pdsts, rumor_bits, informed_now[pdsts]).answered
        self.informed[delivery.dsts] = True
        self.informed[pullers[answered]] = True

    def done(self) -> bool:
        return bool(self.informed[self._alive].all())

    def progress(self) -> float:
        # count_nonzero over a fused mask: no fancy-index gather, so the
        # per-round telemetry probe stays cheap even at n = 2^18.
        alive = int(np.count_nonzero(self._alive))
        if not alive:
            return 1.0
        return float(np.count_nonzero(self.informed & self._alive) / alive)


def push_pull_round_cap(n: int) -> int:
    """The w.h.p. schedule around ``log3 n + O(log log n)`` [10]."""
    return math.ceil(math.log(max(n, 2), 3)) + 10


@register_algorithm(
    "push-pull",
    category="baseline",
    kwargs=("max_rounds",),
    doc="PUSH-PULL gossip [10]: log3 n + O(log log n) rounds.",
)
def uniform_push_pull(
    sim: Simulator, source: int = 0, *, trace: Trace = None, max_rounds: int = None
) -> AlgorithmReport:
    """Run PUSH-PULL gossip over its full w.h.p. schedule.

    No local stopping rule: informed nodes push for the whole
    ``Theta(log n)`` schedule, giving the ``Theta(log n)`` per-node
    message-complexity that [10]'s median-counter rule then cuts to
    ``O(log log n)``.
    """
    trace = trace if trace is not None else null_trace()
    protocol = PushPullProtocol(sim, source)
    cap = max_rounds if max_rounds is not None else push_pull_round_cap(sim.net.n)
    with sim.metrics.phase("push-pull"):
        result = run_protocol(
            protocol, sim, max_rounds=cap, trace=trace, run_to_cap=True
        )
    return report_from_sim(
        "push-pull",
        sim,
        protocol.informed,
        trace,
        completion_round=result.completion_round,
    )


@register_batch_runner("push-pull")
def batched_push_pull(
    n: int,
    reps: int,
    rng: np.random.Generator,
    *,
    message_bits: int = 256,
    source: "int | None" = 0,
    max_rounds: "int | None" = None,
    graph=None,
    telemetry=None,
    overlay=None,
) -> BatchOutcome:
    """PUSH-PULL over its full w.h.p. schedule, ``reps`` replications at
    once in ``(reps, n)`` arrays (see :mod:`repro.sim.batch`).

    Accounting matches the engine path message for message: every node
    initiates each round (informed push, uninformed pull); a push is one
    ``message_bits``-bit message; a pull charges one response iff the
    responder holds the rumor; every contact counts toward its target's
    fan-in.  All replications run the same fixed schedule, so the batch
    stays rectangular and one set of numpy ops per round advances — and
    accounts — all of them.

    With a bound :class:`~repro.sim.topology.ContactGraph` (``graph``),
    contacts come from :meth:`~repro.sim.topology.ContactGraph.sample_contacts_batch`
    instead of the uniform draw: an isolated node's ``-1`` contact is a
    charged-but-undelivered push (and an unanswered pull), exactly the
    engine's restricted-topology rule.

    ``telemetry`` (a :class:`repro.obs.telemetry.RunTelemetry` handle, or
    ``None``) samples the batch every ``probe_every`` steps: mean
    informed fraction and cumulative messages/bits over all replications
    in the chunk, plus a forced final sample so series totals match the
    outcome exactly.

    ``overlay`` (a :class:`repro.sim.schedule.BatchClockOverlay`, or
    ``None``) is the event tier: every round's contacts — one per node,
    serving both the push and the pull lane — fold into the per-rep
    clock matrix, and the outcome carries per-rep ``sim_time``.  The
    overlay draws only from its own delay streams, so the batch's
    rounds/messages/bits are bit-identical with it on or off.
    """
    if reps < 1:
        raise ValueError(f"reps must be positive, got {reps}")
    cap = max_rounds if max_rounds is not None else push_pull_round_cap(n)
    sources = resolve_sources(source, reps, n, rng)
    informed = np.zeros((reps, n), dtype=bool)
    informed[np.arange(reps), sources] = True

    # intp offsets: bincount and fancy indexing cast narrower index
    # arrays per use, so lean dtypes lose here.
    row_offsets = (np.arange(reps, dtype=np.int64) * n)[:, None]
    all_nodes = np.arange(n, dtype=np.int64)
    all_rows = np.arange(reps, dtype=np.int64)
    messages = np.zeros(reps, dtype=np.int64)
    max_fanin = np.zeros(reps, dtype=np.int64)
    completion = np.full(reps, -1, dtype=np.int64)
    flat_informed = informed.ravel()  # view — stays in sync with `informed`

    for step in range(cap):
        if graph is None:
            targets = random_targets_batch(rng, reps, n)
            valid = None
            flat_t = (targets + row_offsets).ravel()
            arrived = flat_t
        else:
            targets = graph.sample_contacts_batch(reps, all_nodes, rng)
            valid = (targets >= 0).ravel()
            flat_t = (np.where(targets >= 0, targets, 0) + row_offsets).ravel()
            arrived = flat_t[valid]
        # Synchronous semantics: responders and push senders act on the
        # informed set as of the round's start.
        target_informed = flat_informed[flat_t]
        if valid is not None:
            target_informed = target_informed & valid
        target_informed = target_informed.reshape(reps, n)
        pull_hits = ~informed & target_informed  # answered pulls, per puller

        # Metrics: pushes + answered pulls are the content messages (a
        # void -1 push is still charged); every arrived contact counts
        # toward its target's fan-in.
        pushes = informed.sum(axis=1)
        responses = pull_hits.sum(axis=1)
        messages += pushes + responses
        np.maximum(max_fanin, per_rep_max_fanin(arrived, reps, n), out=max_fanin)

        # Deliveries.  The round-start informed set is read out into the
        # delivery index array before the scatter below mutates it, so
        # no snapshot copy is needed.
        deliver = informed.ravel() if valid is None else informed.ravel() & valid
        flat_informed[flat_t[deliver]] = True
        informed |= pull_hits
        if overlay is not None:
            # Every node initiates one contact (push or pull lane); a
            # void -1 target occupies its caller without delivering.
            overlay.full_round(all_rows, targets, valid)

        done = informed.all(axis=1)
        completion[(completion < 0) & done] = step + 1

        if telemetry is not None and (step + 1) % telemetry.probe_every == 0:
            row = dict(
                round=step + 1,
                informed=float(informed.mean()),
                messages=int(messages.sum()),
                bits=int(messages.sum()) * int(message_bits),
            )
            if overlay is not None:
                row["sim_time"] = float(overlay.sim_time.max())
            telemetry.series.append(**row)

    informed_counts = informed.sum(axis=1)
    if telemetry is not None:
        row = dict(
            round=cap,
            informed=float(informed.mean()),
            messages=int(messages.sum()),
            bits=int(messages.sum()) * int(message_bits),
        )
        if overlay is not None:
            row["sim_time"] = float(overlay.sim_time.max())
        telemetry.series.force(**row)
    return BatchOutcome(
        algorithm="push-pull",
        n=n,
        rounds=np.full(reps, cap, dtype=np.int64),
        completion_round=completion,
        messages=messages,
        bits=messages * int(message_bits),
        max_fanin=max_fanin,
        informed_counts=informed_counts,
        success=informed_counts == n,
        sim_time=None if overlay is None else overlay.sim_time.copy(),
    )


@register_task_transport("push-pull")
def push_pull_task_transport(
    sim: Simulator, state, *, trace: Trace = None, max_rounds: int = None
) -> AlgorithmReport:
    """PUSH-PULL's contact pattern generalised to any task: content
    holders push, the empty-handed pull (mass-exchange tasks put
    everyone on the push lane)."""
    return run_uniform_task(
        sim, state, mode="push-pull", max_rounds=max_rounds, trace=trace
    )


#: ``run_replications(..., task=..., engine="vector")`` entry points:
#: the batched ``(R, n)`` task executors of :mod:`repro.sim.batch` under
#: the push-pull (uniform exchange) pattern — push-sum mass exchange,
#: k-rumor all-cast, and min/max dissemination.
register_batch_runner("push-pull", task="push-sum")(batched_push_sum)
register_batch_runner("push-pull", task="k-rumor")(batched_k_rumor)
register_batch_runner("push-pull", task="min-max")(batched_min_max)

#: run_replications threads the bound contact graph into the vector call
#: for runners that advertise restricted-topology support.
batched_push_pull.supports_topology = True

#: run_replications hands runners that advertise telemetry support the
#: chunk's RunTelemetry handle for per-step series sampling.
batched_push_pull.supports_telemetry = True

#: run_replications hands runners that advertise overlay support the
#: event tier's batched clock overlay (``scheduler=event`` stays on the
#: vector engine instead of falling back to the sequential reset path).
batched_push_pull.supports_overlay = True
