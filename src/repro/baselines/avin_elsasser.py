"""Reconstruction of Avin & Elsässer [1] (DISC 2013): Theta(sqrt(log n)).

[1] is the prior state of the art this paper improves on (its Theorem 1):
``O(sqrt(log n))`` rounds using ``O(sqrt(log n))`` messages per node and
``O(n log^{3/2} n + n b log log n)`` bits, in the same random-phone-call
model with direct addressing.  The companion paper's full pseudocode is not
part of our source, so — per the substitution rule (DESIGN.md §5.2) — we
implement a *reconstruction with the same complexity profile* built from
this paper's own cluster machinery:

Groups recruit groups as in SquareClusters, but where Cluster1's
constant-size ClusterResize messages allow unbounded squaring
(``s -> s^2``), [1]'s coordination messages carry only
``k = ceil(sqrt(log2 n))`` IDs; we model that budget by letting each
active cluster direct at most ``g = 2^k`` of its members to recruit per
iteration, capping the growth factor at ``g + 1``.  Group size then needs

    ``log2(n) / log2(g+1)  ~  sqrt(log n)``

iterations to reach ``n``, and every clustered node spends O(1)
coordination messages per iteration — ``Theta(sqrt(log n))`` messages per
node, with ``id_bits``-sized messages giving the ``n log^{3/2} n`` bit
term and the final rumor share the ``n b`` term.  This sits exactly at
Theorem 1's trade-off point, between plain gossip's ``Theta(log n)`` and
Cluster1/2's ``Theta(log log n)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.clustering import Clustering
from repro.core.constants import LAPTOP
from repro.core.grow import grow_initial_clusters_v1
from repro.core.merge_phase import merge_all_clusters
from repro.core.primitives import (
    cluster_activate,
    cluster_dissolve,
    cluster_merge,
    cluster_push,
    cluster_resize,
    cluster_share_rumor,
)
from repro.core.pull_phase import unclustered_nodes_pull
from repro.core.result import AlgorithmReport, report_from_sim
from repro.registry import register_algorithm
from repro.sim.delivery import NOTHING
from repro.sim.engine import Simulator
from repro.sim.trace import Trace, null_trace


def default_capacity(n: int) -> int:
    """``k = ceil(sqrt(log2 n))`` — the ID budget per message in [1]."""
    return math.ceil(math.sqrt(math.log2(max(n, 4))))


def ae_round_estimate(n: int) -> int:
    """The ``k + log n / k`` round shape of the reconstruction."""
    k = default_capacity(n)
    return k + math.ceil(math.log2(max(n, 2)) / k)


def _capped_active_senders(cl: Clustering, cap: int) -> np.ndarray:
    """Up to ``cap`` members per active cluster (smallest uids first).

    The leader's recruiting directive can designate at most ``cap``
    members; uid order is a deterministic choice every member computes
    locally from the membership it saw at the last resize.
    """
    members = np.flatnonzero(cl.active_member_mask())
    if len(members) == 0:
        return members
    uid = cl.net.uid
    order = np.lexsort((uid[members], cl.follow[members]))
    members = members[order]
    groups = cl.follow[members]
    boundary = np.ones(len(members), dtype=bool)
    boundary[1:] = groups[1:] != groups[:-1]
    seg_start = np.maximum.accumulate(
        np.where(boundary, np.arange(len(members)), 0)
    )
    rank = np.arange(len(members)) - seg_start
    return members[rank < cap]


@register_algorithm(
    "avin-elsasser",
    category="baseline",
    kwargs=("message_capacity",),
    doc="Avin–Elsässer [1] reconstruction: Θ(√log n) rounds and msgs.",
)
def avin_elsasser(
    sim: Simulator,
    source: int = 0,
    *,
    trace: Trace = None,
    message_capacity: int = None,
) -> AlgorithmReport:
    """Run the Theta(sqrt(log n)) reconstruction.

    ``message_capacity`` overrides ``k`` (tests use it to confirm the
    trade-off: ``k = 1`` degenerates towards ``Theta(log n)`` doubling,
    large ``k`` approaches the uncapped squaring of Cluster1).
    """
    trace = trace if trace is not None else null_trace()
    n = sim.net.n
    k = message_capacity if message_capacity is not None else default_capacity(n)
    if k < 1:
        raise ValueError(f"message capacity must be >= 1, got {k}")
    g = 2**k

    # Phase 1: seed and grow initial clusters exactly as Cluster1 does
    # (this part of the machinery predates the squaring trick).
    p1 = LAPTOP.cluster1(n)
    cl = Clustering(sim.net)
    grow_initial_clusters_v1(sim, cl, p1, trace)

    # Phase 2: capped group growth.  Like SquareClusters, but each active
    # cluster may direct only min(s, g) recruiters per iteration.
    uid = sim.net.uid
    with sim.metrics.phase("ae-capped-growth"):
        s = p1.min_cluster_size
        cluster_dissolve(sim, cl, s)
        safety = 3 * ae_round_estimate(n) + 8
        iterations = 0
        while s < n / 4 and cl.cluster_count() > 1 and iterations < safety:
            iterations += 1
            cluster_resize(sim, cl, s)
            grow = min(s, g)
            cluster_activate(sim, cl, 1.0 / (grow + 1.0))
            leaders = cl.leaders()
            if len(leaders) and not cl.active[leaders].any():
                cl.active[sim.net.min_uid_index(leaders)] = True
            for _ in range(2):
                senders = _capped_active_senders(cl, grow)
                outcome = cluster_push(
                    sim, cl, senders=senders, reduce="min", label="AEPush"
                )
                new_leader = np.where(cl.active, NOTHING, outcome.leader_receipt)
                keep = (new_leader != NOTHING) & cl.active[
                    np.maximum(new_leader, 0)
                ]
                new_leader = np.where(keep, new_leader, NOTHING)
                cluster_merge(sim, cl, new_leader)
            s = max(s + 1, (s * (grow + 1)) // 2)
            trace.emit(
                sim.metrics.rounds,
                "ae.iter",
                nominal_size=s,
                clusters=cl.cluster_count(),
                clustered=cl.clustered_count(),
            )

    merge_all_clusters(sim, cl, reps=4, trace=trace)
    unclustered_nodes_pull(sim, cl, rounds=p1.pull_rounds, trace=trace)

    informed = np.zeros(n, dtype=bool)
    if sim.net.alive[source]:
        informed[source] = True
    with sim.metrics.phase("share"):
        informed = cluster_share_rumor(sim, cl, informed)

    return report_from_sim(
        "avin-elsasser",
        sim,
        informed,
        trace,
        message_capacity=k,
        growth_cap=g,
        clustering=cl,
    )
