"""First-class algorithm registry: the library's plugin layer.

Every broadcast algorithm — the paper's Cluster1/2/3 and each baseline —
self-registers at import time with :func:`register_algorithm`, declaring
its name, category, accepted keyword knobs and a one-line doc.  The
registry is then the single source of truth for

* :func:`repro.core.broadcast.broadcast` (lookup-and-run dispatch),
* the sweep executor in :mod:`repro.analysis.runner` (names travel in
  picklable :class:`~repro.analysis.runner.RunSpec` jobs),
* scenario validation in :mod:`repro.workloads.scenarios`, and
* the CLI's ``list-algorithms`` catalogue.

Adding an algorithm is one decorator — no edits to the dispatch core::

    from repro.registry import register_algorithm

    @register_algorithm(
        "my-gossip", category="baseline", kwargs=("max_rounds",),
        doc="My experimental gossip variant.",
    )
    def my_gossip(sim, source=0, *, trace=None, max_rounds=None):
        ...
        return report_from_sim("my-gossip", sim, informed, trace)

Registered runners share the calling convention
``runner(sim, source, **knobs)`` with ``trace=`` always passed and
``profile=`` passed iff the spec declares ``uses_profile``.  Entries with
``broadcastable=False`` (e.g. Name-Dropper, a *discovery* protocol with
its own report type) are catalogued but rejected by ``broadcast()``.

The registry itself imports nothing from :mod:`repro.core` or
:mod:`repro.baselines`; those modules import *it*, so there is no cycle.
:func:`ensure_builtins_loaded` imports the built-in algorithm modules on
first lookup so that ``broadcast(n, "push")`` works without the caller
importing :mod:`repro.baselines` first.
"""

from __future__ import annotations

import dataclasses
import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class DuplicateAlgorithmError(ValueError):
    """Two registrations claimed the same algorithm name."""


class UnknownAlgorithmError(ValueError):
    """Lookup of a name nobody registered."""


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: identity, entry point, and calling shape.

    Parameters
    ----------
    name:
        Public name (what ``broadcast()``, sweeps and the CLI use).
    runner:
        The entry-point callable.
    category:
        ``"core"`` (the paper's algorithms), ``"baseline"`` (prior work),
        or ``"discovery"`` (resource-discovery protocols that do not fit
        the broadcast report shape).
    uses_profile:
        Whether the runner takes a ``profile=`` constant-resolution knob.
    broadcastable:
        Whether :func:`repro.core.broadcast.broadcast` may dispatch to it.
    kwargs:
        Names of the extra keyword knobs the runner accepts (documented
        surface for scenario validation and ``list-algorithms``).
    doc:
        One-line description for catalogues.
    batch_runner:
        Optional vectorised replication entry point (see
        :mod:`repro.sim.batch`): ``fn(n, reps, rng, *, message_bits,
        source, **knobs) -> BatchOutcome`` advancing R replications in
        ``(R, n)`` arrays.  ``None`` (most algorithms) means replication
        suites fall back to the memory-lean sequential engine.
    """

    name: str
    runner: Callable[..., Any]
    category: str = "baseline"
    uses_profile: bool = False
    broadcastable: bool = True
    kwargs: Tuple[str, ...] = ()
    doc: str = ""
    batch_runner: Optional[Callable[..., Any]] = None

    def run(self, sim, source, profile, trace, **algorithm_kwargs):
        """Invoke the runner with the uniform dispatch convention."""
        if not self.broadcastable:
            raise ValueError(
                f"algorithm {self.name!r} (category {self.category!r}) is not "
                "a broadcast algorithm; call its entry point directly"
            )
        call: Dict[str, Any] = dict(algorithm_kwargs)
        call["trace"] = trace
        if self.uses_profile:
            call["profile"] = profile
        return self.runner(sim, source, **call)


_REGISTRY: Dict[str, AlgorithmSpec] = {}

#: Modules whose import registers the built-in algorithms.
_BUILTIN_MODULES: Tuple[str, ...] = (
    "repro.core.cluster1",
    "repro.core.cluster2",
    "repro.core.cluster_push_pull",
    "repro.baselines.uniform_push",
    "repro.baselines.uniform_pull",
    "repro.baselines.push_pull",
    "repro.baselines.median_counter",
    "repro.baselines.avin_elsasser",
    "repro.baselines.name_dropper",
)

_builtins_loaded = False


def ensure_builtins_loaded() -> None:
    """Import the built-in algorithm modules once (idempotent).

    Deferred to first lookup so that importing :mod:`repro.registry` from
    an algorithm module (to use the decorator) never re-enters the
    algorithm packages mid-import.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only marked loaded on full success: a failed import propagates and
    # the next lookup retries instead of serving a silently partial
    # catalogue.  (Re-entrant calls during the loop are safe — modules
    # already in progress come back from sys.modules.)
    _builtins_loaded = True


def register_algorithm(
    name: str,
    *,
    category: str = "baseline",
    uses_profile: bool = False,
    broadcastable: bool = True,
    kwargs: Sequence[str] = (),
    doc: Optional[str] = None,
) -> Callable[[Callable], Callable]:
    """Class the decorated entry point as algorithm ``name``.

    Returns the function unchanged, so modules keep their plain callables
    for direct use.  ``doc`` defaults to the first line of the runner's
    docstring.
    """

    def decorate(fn: Callable) -> Callable:
        summary = doc
        if summary is None:
            summary = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        register_spec(
            AlgorithmSpec(
                name=name,
                runner=fn,
                category=category,
                uses_profile=uses_profile,
                broadcastable=broadcastable,
                kwargs=tuple(kwargs),
                doc=summary,
            )
        )
        return fn

    return decorate


def register_spec(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register a fully built spec (the decorator funnels through here).

    Re-registering the *same* entry point (same module and qualname —
    what ``importlib.reload`` produces) replaces the stale spec so
    interactive iteration works; a different function claiming a taken
    name is a conflict.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        same_function = (
            getattr(existing.runner, "__module__", None)
            == getattr(spec.runner, "__module__", object())
            and getattr(existing.runner, "__qualname__", None)
            == getattr(spec.runner, "__qualname__", object())
        )
        if not same_function:
            raise DuplicateAlgorithmError(
                f"algorithm {spec.name!r} is already registered "
                f"(by {existing.runner!r})"
            )
    _REGISTRY[spec.name] = spec
    return spec


def register_batch_runner(name: str) -> Callable[[Callable], Callable]:
    """Attach a vectorised replication runner to algorithm ``name``.

    Used as a decorator *after* the algorithm itself is registered (the
    two entry points usually live in the same module)::

        @register_batch_runner("push-pull")
        def batched_push_pull(n, reps, rng, *, message_bits=256, source=0,
                              max_rounds=None) -> BatchOutcome: ...

    Returns the function unchanged.
    """

    def decorate(fn: Callable) -> Callable:
        spec = _REGISTRY.get(name)
        if spec is None:
            raise UnknownAlgorithmError(
                f"cannot attach a batch runner to unregistered algorithm {name!r}"
            )
        _REGISTRY[name] = dataclasses.replace(spec, batch_runner=fn)
        return fn

    return decorate


def unregister_algorithm(name: str) -> None:
    """Remove a registration (tests and interactive experimentation)."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look an algorithm up by name.

    Raises :class:`UnknownAlgorithmError` (a ``ValueError``) with the
    available names on a miss.
    """
    ensure_builtins_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; choose from "
            f"{sorted(_REGISTRY)}"
        ) from None


def algorithm_specs(*, broadcastable_only: bool = False) -> List[AlgorithmSpec]:
    """All registered specs, sorted by name."""
    ensure_builtins_loaded()
    specs = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if broadcastable_only:
        specs = [s for s in specs if s.broadcastable]
    return specs


def algorithm_names(*, broadcastable_only: bool = True) -> List[str]:
    """Registered names; by default only those ``broadcast()`` accepts."""
    return [s.name for s in algorithm_specs(broadcastable_only=broadcastable_only)]
