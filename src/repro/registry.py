"""First-class algorithm *and task* registry: the library's plugin layer.

Every broadcast algorithm — the paper's Cluster1/2/3 and each baseline —
self-registers at import time with :func:`register_algorithm`, declaring
its name, category, accepted keyword knobs and a one-line doc.  The
registry is then the single source of truth for

* :func:`repro.core.broadcast.broadcast` (lookup-and-run dispatch),
* the sweep executor in :mod:`repro.analysis.runner` (names travel in
  picklable :class:`~repro.analysis.runner.RunSpec` jobs),
* scenario validation in :mod:`repro.workloads.scenarios`, and
* the CLI's ``list-algorithms`` catalogue.

Tasks (:mod:`repro.tasks`) register here too, via :func:`register_task`:
a :class:`TaskSpec` names a *workload semantics* — what per-node state the
protocol carries, what a message means, and when the execution is done
(single-rumor broadcast, k-rumor all-cast, push-sum averaging, ...).  An
algorithm opts into non-broadcast tasks by registering a **task
transport** (:func:`register_task_transport`): a runner that drives any
:class:`~repro.tasks.state.TaskState` over that algorithm's contact
pattern.  Compatibility of an ``(algorithm, task)`` pair is then a
registry question — :func:`supports_task` — answered before any network
is built.

Adding an algorithm is one decorator — no edits to the dispatch core::

    from repro.registry import register_algorithm

    @register_algorithm(
        "my-gossip", category="baseline", kwargs=("max_rounds",),
        doc="My experimental gossip variant.",
    )
    def my_gossip(sim, source=0, *, trace=None, max_rounds=None):
        ...
        return report_from_sim("my-gossip", sim, informed, trace)

Registered runners share the calling convention
``runner(sim, source, **knobs)`` with ``trace=`` always passed and
``profile=`` passed iff the spec declares ``uses_profile``.  Entries with
``broadcastable=False`` (e.g. Name-Dropper, a *discovery* protocol with
its own report type) are catalogued but rejected by ``broadcast()``.

The registry itself imports nothing from :mod:`repro.core` or
:mod:`repro.baselines`; those modules import *it*, so there is no cycle.
:func:`ensure_builtins_loaded` imports the built-in algorithm modules on
first lookup so that ``broadcast(n, "push")`` works without the caller
importing :mod:`repro.baselines` first.
"""

from __future__ import annotations

import dataclasses
import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class DuplicateAlgorithmError(ValueError):
    """Two registrations claimed the same algorithm name."""


class UnknownAlgorithmError(ValueError):
    """Lookup of a name nobody registered."""


class DuplicateTaskError(ValueError):
    """Two registrations claimed the same task name."""


class UnknownTaskError(ValueError):
    """Lookup of a task name nobody registered."""


class IncompatibleTaskError(ValueError):
    """An (algorithm, task) pair with no registered transport."""


class DuplicateTopologyError(ValueError):
    """Two registrations claimed the same topology name."""


class UnknownTopologyError(ValueError):
    """Lookup of a topology name nobody registered."""


class IncompatibleTopologyError(ValueError):
    """An (algorithm, topology) pair the algorithm declared unsupported."""


#: The implicit default task: single-rumor broadcast, the paper's setting.
BROADCAST_TASK = "broadcast"


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: identity, entry point, and calling shape.

    Parameters
    ----------
    name:
        Public name (what ``broadcast()``, sweeps and the CLI use).
    runner:
        The entry-point callable.
    category:
        ``"core"`` (the paper's algorithms), ``"baseline"`` (prior work),
        or ``"discovery"`` (resource-discovery protocols that do not fit
        the broadcast report shape).
    uses_profile:
        Whether the runner takes a ``profile=`` constant-resolution knob.
    broadcastable:
        Whether :func:`repro.core.broadcast.broadcast` may dispatch to it.
    kwargs:
        Names of the extra keyword knobs the runner accepts (documented
        surface for scenario validation and ``list-algorithms``).
    doc:
        One-line description for catalogues.
    batch_runner:
        Optional vectorised replication entry point (see
        :mod:`repro.sim.batch`): ``fn(n, reps, rng, *, message_bits,
        source, **knobs) -> BatchOutcome`` advancing R replications in
        ``(R, n)`` arrays.  ``None`` (most algorithms) means replication
        suites fall back to the memory-lean sequential engine.
    task_transport:
        Optional task runner ``fn(sim, state, *, trace=..., [profile=...,]
        **knobs) -> AlgorithmReport`` driving an arbitrary
        :class:`~repro.tasks.state.TaskState` over this algorithm's
        contact pattern.  ``None`` means the algorithm only supports the
        default ``"broadcast"`` task.
    task_batch_runners:
        Vectorised replication entry points for non-broadcast tasks,
        keyed by task name (``batch_runner`` covers ``"broadcast"``).
    complete_graph_only:
        Whether the algorithm is only meaningful on the complete contact
        graph (:mod:`repro.sim.topology`).  Most algorithms run on any
        topology — their *guarantees* just degrade — but some (e.g. the
        median-counter stopping rule, whose phase thresholds are derived
        from uniform global sampling) are wrong, not merely slower, on a
        restricted graph, and declare it here so ``broadcast()`` and
        scenario validation refuse the pair up front.
    """

    name: str
    runner: Callable[..., Any]
    category: str = "baseline"
    uses_profile: bool = False
    broadcastable: bool = True
    kwargs: Tuple[str, ...] = ()
    doc: str = ""
    batch_runner: Optional[Callable[..., Any]] = None
    task_transport: Optional[Callable[..., Any]] = None
    task_batch_runners: Tuple[Tuple[str, Callable[..., Any]], ...] = ()
    complete_graph_only: bool = False

    def run(self, sim, source, profile, trace, **algorithm_kwargs):
        """Invoke the runner with the uniform dispatch convention."""
        if not self.broadcastable:
            raise ValueError(
                f"algorithm {self.name!r} (category {self.category!r}) is not "
                "a broadcast algorithm; call its entry point directly"
            )
        call: Dict[str, Any] = dict(algorithm_kwargs)
        call["trace"] = trace
        if self.uses_profile:
            call["profile"] = profile
        return self.runner(sim, source, **call)

    def supports_task(self, task: str) -> bool:
        """Whether this algorithm can run workload ``task``.

        Every broadcastable algorithm supports the implicit
        ``"broadcast"`` task; any other task needs a registered
        transport.
        """
        if task == BROADCAST_TASK:
            return self.broadcastable
        return self.task_transport is not None

    def run_task(self, sim, state, profile, trace, **algorithm_kwargs):
        """Drive a non-broadcast task state through this algorithm's
        transport (same keyword convention as :meth:`run`)."""
        if self.task_transport is None:
            raise IncompatibleTaskError(
                f"algorithm {self.name!r} has no task transport; it only "
                f"runs the {BROADCAST_TASK!r} task"
            )
        call: Dict[str, Any] = dict(algorithm_kwargs)
        call["trace"] = trace
        if self.uses_profile:
            call["profile"] = profile
        report = self.task_transport(sim, state, **call)
        # Transports are shared between algorithms (e.g. one cluster
        # transport behind Cluster1 and Cluster2); the registry knows the
        # public name, so it stamps the report.
        report.algorithm = self.name
        return report

    def batch_runner_for(self, task: str) -> Optional[Callable[..., Any]]:
        """The vectorised replication runner for ``task`` (None if none)."""
        if task == BROADCAST_TASK:
            return self.batch_runner
        return dict(self.task_batch_runners).get(task)

    def supports_topology(self, topology) -> bool:
        """Whether this algorithm may run on contact graph ``topology``
        (a :class:`repro.sim.topology.Topology` spec)."""
        return topology.complete or not self.complete_graph_only


_REGISTRY: Dict[str, AlgorithmSpec] = {}

#: Modules whose import registers the built-in algorithms.
_BUILTIN_MODULES: Tuple[str, ...] = (
    "repro.core.cluster1",
    "repro.core.cluster2",
    "repro.core.cluster_push_pull",
    "repro.baselines.uniform_push",
    "repro.baselines.uniform_pull",
    "repro.baselines.push_pull",
    "repro.baselines.median_counter",
    "repro.baselines.avin_elsasser",
    "repro.baselines.name_dropper",
    # The built-in task catalogue (k-rumor, push-sum, min/max) — loaded
    # with the algorithms so that (algorithm, task) compatibility is
    # resolvable as soon as anyone touches the registry.
    "repro.tasks.builtin",
    # The built-in contact-graph catalogue (complete, ring, torus,
    # random-regular, gnp) — its import self-registers the topologies.
    "repro.sim.topology",
)

_builtins_loaded = False


def ensure_builtins_loaded() -> None:
    """Import the built-in algorithm modules once (idempotent).

    Deferred to first lookup so that importing :mod:`repro.registry` from
    an algorithm module (to use the decorator) never re-enters the
    algorithm packages mid-import.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only marked loaded on full success: a failed import propagates and
    # the next lookup retries instead of serving a silently partial
    # catalogue.  (Re-entrant calls during the loop are safe — modules
    # already in progress come back from sys.modules.)
    _builtins_loaded = True


def register_algorithm(
    name: str,
    *,
    category: str = "baseline",
    uses_profile: bool = False,
    broadcastable: bool = True,
    kwargs: Sequence[str] = (),
    doc: Optional[str] = None,
    complete_graph_only: bool = False,
) -> Callable[[Callable], Callable]:
    """Class the decorated entry point as algorithm ``name``.

    Returns the function unchanged, so modules keep their plain callables
    for direct use.  ``doc`` defaults to the first line of the runner's
    docstring.
    """

    def decorate(fn: Callable) -> Callable:
        summary = doc
        if summary is None:
            summary = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        register_spec(
            AlgorithmSpec(
                name=name,
                runner=fn,
                category=category,
                uses_profile=uses_profile,
                broadcastable=broadcastable,
                kwargs=tuple(kwargs),
                doc=summary,
                complete_graph_only=complete_graph_only,
            )
        )
        return fn

    return decorate


def register_spec(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register a fully built spec (the decorator funnels through here).

    Re-registering the *same* entry point (same module and qualname —
    what ``importlib.reload`` produces) replaces the stale spec so
    interactive iteration works; a different function claiming a taken
    name is a conflict.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        same_function = (
            getattr(existing.runner, "__module__", None)
            == getattr(spec.runner, "__module__", object())
            and getattr(existing.runner, "__qualname__", None)
            == getattr(spec.runner, "__qualname__", object())
        )
        if not same_function:
            raise DuplicateAlgorithmError(
                f"algorithm {spec.name!r} is already registered "
                f"(by {existing.runner!r})"
            )
    _REGISTRY[spec.name] = spec
    return spec


def register_batch_runner(
    name: str, task: str = BROADCAST_TASK
) -> Callable[[Callable], Callable]:
    """Attach a vectorised replication runner to algorithm ``name``.

    Used as a decorator *after* the algorithm itself is registered (the
    two entry points usually live in the same module)::

        @register_batch_runner("push-pull")
        def batched_push_pull(n, reps, rng, *, message_bits=256, source=0,
                              max_rounds=None) -> BatchOutcome: ...

    ``task`` selects which workload the runner vectorises: the default is
    the implicit broadcast task; ``task="push-sum"`` (for example) makes
    the runner the ``vector``-engine entry point for
    ``run_replications(..., task="push-sum")`` on this algorithm.

    Returns the function unchanged.
    """

    def decorate(fn: Callable) -> Callable:
        spec = _REGISTRY.get(name)
        if spec is None:
            raise UnknownAlgorithmError(
                f"cannot attach a batch runner to unregistered algorithm {name!r}"
            )
        if task == BROADCAST_TASK:
            _REGISTRY[name] = dataclasses.replace(spec, batch_runner=fn)
        else:
            runners = dict(spec.task_batch_runners)
            runners[task] = fn
            _REGISTRY[name] = dataclasses.replace(
                spec, task_batch_runners=tuple(sorted(runners.items()))
            )
        return fn

    return decorate


def register_task_transport(name: str) -> Callable[[Callable], Callable]:
    """Attach a task transport to algorithm ``name`` (decorator).

    The transport is what makes the algorithm compatible with every
    non-broadcast task: it receives a built
    :class:`~repro.tasks.state.TaskState` and drives it over the
    algorithm's own contact pattern (uniform random calls for the gossip
    baselines, the clustering structure for the paper's algorithms)::

        @register_task_transport("push-pull")
        def push_pull_transport(sim, state, *, trace=None, max_rounds=None):
            return run_uniform_task(sim, state, ...)

    Returns the function unchanged.
    """

    def decorate(fn: Callable) -> Callable:
        spec = _REGISTRY.get(name)
        if spec is None:
            raise UnknownAlgorithmError(
                f"cannot attach a task transport to unregistered algorithm {name!r}"
            )
        _REGISTRY[name] = dataclasses.replace(spec, task_transport=fn)
        return fn

    return decorate


def unregister_algorithm(name: str) -> None:
    """Remove a registration (tests and interactive experimentation)."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look an algorithm up by name.

    Raises :class:`UnknownAlgorithmError` (a ``ValueError``) with the
    available names on a miss.
    """
    ensure_builtins_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; choose from "
            f"{sorted(_REGISTRY)}"
        ) from None


def algorithm_specs(*, broadcastable_only: bool = False) -> List[AlgorithmSpec]:
    """All registered specs, sorted by name."""
    ensure_builtins_loaded()
    specs = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if broadcastable_only:
        specs = [s for s in specs if s.broadcastable]
    return specs


def algorithm_names(*, broadcastable_only: bool = True) -> List[str]:
    """Registered names; by default only those ``broadcast()`` accepts."""
    return [s.name for s in algorithm_specs(broadcastable_only=broadcastable_only)]


# ----------------------------------------------------------------------
# Task registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskSpec:
    """One registered workload semantics.

    Parameters
    ----------
    name:
        Public task name (what ``broadcast(task=...)``, scenarios and the
        CLI use).
    factory:
        ``fn(net, rng, *, message_bits, source, **knobs) -> TaskState`` —
        builds the initial per-node state on an already-built (and
        already-failed, if the run has pre-run failures) network.  The
        default ``"broadcast"`` task has no factory: it is the legacy
        single-rumor path, dispatched by :func:`repro.core.broadcast`
        itself.
    category:
        ``"dissemination"`` (completion = everyone holds some content) or
        ``"aggregation"`` (completion = everyone's estimate of a global
        function is good enough).
    kwargs:
        Names of the extra keyword knobs the factory accepts (documented
        surface for scenario validation and ``list-tasks``).
    doc:
        One-line description for catalogues.
    """

    name: str
    factory: Optional[Callable[..., Any]] = None
    category: str = "dissemination"
    kwargs: Tuple[str, ...] = ()
    doc: str = ""

    def validate_kwargs(self, task_kwargs: Optional[Dict[str, Any]]) -> None:
        """Reject knobs the task does not declare (uniform error for every
        execution engine, including the batched vector path)."""
        unknown = set(task_kwargs or {}) - set(self.kwargs)
        if unknown:
            raise ValueError(
                f"task {self.name!r} does not accept {sorted(unknown)}; "
                f"declared knobs are {sorted(self.kwargs)}"
            )

    def build(self, net, rng, *, message_bits: int, source, **task_kwargs):
        """Construct the initial :class:`~repro.tasks.state.TaskState`."""
        if self.factory is None:
            raise ValueError(
                f"task {self.name!r} is the implicit legacy path and has no "
                "state factory; repro.core.broadcast dispatches it directly"
            )
        self.validate_kwargs(task_kwargs)
        return self.factory(
            net, rng, message_bits=message_bits, source=source, **task_kwargs
        )


_TASKS: Dict[str, TaskSpec] = {}

#: The implicit single-rumor task, present from import so that the
#: catalogue is never empty and ``get_task("broadcast")`` always works.
_TASKS[BROADCAST_TASK] = TaskSpec(
    name=BROADCAST_TASK,
    factory=None,
    category="dissemination",
    doc="Single-rumor broadcast — the paper's setting (the default task).",
)


def register_task(spec: TaskSpec) -> TaskSpec:
    """Register a task spec (extension point for third-party tasks).

    Same replace-vs-conflict rule as :func:`register_spec`: re-registering
    an identical factory (an ``importlib.reload``) replaces the stale
    spec; a different factory claiming a taken name is a conflict.
    """
    existing = _TASKS.get(spec.name)
    if existing is not None:
        same_factory = (
            getattr(existing.factory, "__module__", None)
            == getattr(spec.factory, "__module__", object())
            and getattr(existing.factory, "__qualname__", None)
            == getattr(spec.factory, "__qualname__", object())
        )
        if not same_factory:
            raise DuplicateTaskError(
                f"task {spec.name!r} is already registered "
                f"(by {existing.factory!r})"
            )
    _TASKS[spec.name] = spec
    return spec


def unregister_task(name: str) -> None:
    """Remove a task registration (tests and interactive use).  The
    implicit broadcast task cannot be removed."""
    if name == BROADCAST_TASK:
        raise ValueError("the implicit broadcast task cannot be unregistered")
    _TASKS.pop(name, None)


def get_task(name: str) -> TaskSpec:
    """Look a task up by name (raises :class:`UnknownTaskError` on miss)."""
    ensure_builtins_loaded()
    try:
        return _TASKS[name]
    except KeyError:
        raise UnknownTaskError(
            f"unknown task {name!r}; choose from {sorted(_TASKS)}"
        ) from None


def task_specs() -> List[TaskSpec]:
    """All registered task specs, sorted by name."""
    ensure_builtins_loaded()
    return sorted(_TASKS.values(), key=lambda s: s.name)


def task_names() -> List[str]:
    """Registered task names, sorted."""
    return [s.name for s in task_specs()]


def supports_task(algorithm: str, task: str) -> bool:
    """Whether the ``(algorithm, task)`` pair has an execution path.

    Unknown algorithm or task names raise (they are lookup errors, not
    incompatibilities).
    """
    spec = get_algorithm(algorithm)
    get_task(task)
    return spec.supports_task(task)


def compatible_algorithms(task: str) -> List[str]:
    """Names of the algorithms that can run workload ``task``."""
    get_task(task)
    return [s.name for s in algorithm_specs() if s.supports_task(task)]


# ----------------------------------------------------------------------
# Topology registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """One registered contact topology (:mod:`repro.sim.topology`).

    Parameters
    ----------
    name:
        Public topology name (what ``broadcast(topology=...)``,
        scenarios and the CLI use).
    factory:
        ``fn(**knobs) -> Topology`` — builds the frozen topology spec
        (e.g. the :class:`~repro.sim.topology.Ring` dataclass itself).
    kwargs:
        Names of the keyword knobs the factory accepts (documented
        surface for ``--topology-arg`` validation and
        ``list-topologies``).
    doc:
        One-line description for catalogues.
    complete:
        Whether this is the complete graph — the default topology, the
        one every algorithm supports and the one the fingerprint corpus
        pins bit-identical.
    """

    name: str
    factory: Callable[..., Any]
    kwargs: Tuple[str, ...] = ()
    doc: str = ""
    complete: bool = False

    def build(self, **topology_kwargs: Any):
        """Construct the frozen topology spec, validating the knobs."""
        unknown = set(topology_kwargs) - set(self.kwargs)
        if unknown:
            raise ValueError(
                f"topology {self.name!r} does not accept {sorted(unknown)}; "
                f"declared knobs are {sorted(self.kwargs)}"
            )
        return self.factory(**topology_kwargs)


_TOPOLOGIES: Dict[str, TopologySpec] = {}


def register_topology(spec: TopologySpec) -> TopologySpec:
    """Register a topology spec (extension point for third-party graphs).

    Same replace-vs-conflict rule as :func:`register_spec`: re-registering
    an identical factory (an ``importlib.reload``) replaces the stale
    spec; a different factory claiming a taken name is a conflict.
    """
    existing = _TOPOLOGIES.get(spec.name)
    if existing is not None:
        same_factory = (
            getattr(existing.factory, "__module__", None)
            == getattr(spec.factory, "__module__", object())
            and getattr(existing.factory, "__qualname__", None)
            == getattr(spec.factory, "__qualname__", object())
        )
        if not same_factory:
            raise DuplicateTopologyError(
                f"topology {spec.name!r} is already registered "
                f"(by {existing.factory!r})"
            )
    _TOPOLOGIES[spec.name] = spec
    return spec


def unregister_topology(name: str) -> None:
    """Remove a topology registration (tests and interactive use).  The
    complete graph cannot be removed — it is the engine's default."""
    spec = _TOPOLOGIES.get(name)
    if spec is not None and spec.complete:
        raise ValueError("the complete contact graph cannot be unregistered")
    _TOPOLOGIES.pop(name, None)


def get_topology_spec(name: str) -> TopologySpec:
    """Look a topology up by name (:class:`UnknownTopologyError` on miss)."""
    ensure_builtins_loaded()
    try:
        return _TOPOLOGIES[name]
    except KeyError:
        raise UnknownTopologyError(
            f"unknown topology {name!r}; choose from {sorted(_TOPOLOGIES)}"
        ) from None


def make_topology(name: str, **topology_kwargs: Any):
    """Build a frozen :class:`~repro.sim.topology.Topology` by name."""
    return get_topology_spec(name).build(**topology_kwargs)


def topology_specs() -> List[TopologySpec]:
    """All registered topology specs, sorted by name."""
    ensure_builtins_loaded()
    return sorted(_TOPOLOGIES.values(), key=lambda s: s.name)


def topology_names() -> List[str]:
    """Registered topology names, sorted."""
    return [s.name for s in topology_specs()]


def supports_topology(algorithm: str, topology) -> bool:
    """Whether ``algorithm`` may run on ``topology`` (a spec instance or
    a registered name).  Unknown names raise — they are lookup errors,
    not incompatibilities."""
    spec = get_algorithm(algorithm)
    if isinstance(topology, str):
        topology = make_topology(topology)
    return spec.supports_topology(topology)


def compatible_topologies(algorithm: str) -> List[str]:
    """Names of the registered topologies ``algorithm`` may run on."""
    spec = get_algorithm(algorithm)
    return [
        t.name
        for t in topology_specs()
        if t.complete or not spec.complete_graph_only
    ]
