"""Nestable wall-clock spans.

A :class:`SpanRecorder` is one run's timer stack: ``span(name)`` opens a
``perf_counter``-based timer, spans nest (the record keeps its depth so
renderers can indent), and every closed span lands in ``records`` in
*closing* order.  Start offsets are relative to the recorder's epoch
(its construction time), so a run's spans are comparable to each other
without carrying absolute clocks — which also keeps recorders picklable
and shard-mergeable.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class SpanRecord:
    """One closed span: where it started (ms since the recorder's epoch),
    how long it ran, how deeply it was nested, and its place in the span
    tree (``id`` is monotonic in opening order; ``parent_id`` is the
    enclosing span's id, or ``None`` at the root) — so nested trees
    survive the JSONL round-trip, not just the flat name list."""

    name: str
    start_ms: float
    wall_ms: float
    depth: int
    id: int = 0
    parent_id: Optional[int] = None


class SpanRecorder:
    """Collects :class:`SpanRecord` entries for one run."""

    def __init__(self) -> None:
        self._epoch = perf_counter()
        self._depth = 0
        self._next_id = 0
        self._open: List[int] = []
        self.records: List[SpanRecord] = []

    def begin(self, name: str) -> Tuple[str, float, int, int, Optional[int]]:
        """Open a span; returns the token :meth:`end` consumes."""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._open[-1] if self._open else None
        self._open.append(span_id)
        self._depth += 1
        return (name, perf_counter(), self._depth - 1, span_id, parent_id)

    def end(self, token: Tuple[str, float, int, int, Optional[int]]) -> float:
        """Close a span, record it, and return its wall-clock in ms."""
        name, t0, depth, span_id, parent_id = token
        self._depth -= 1
        if self._open and self._open[-1] == span_id:
            self._open.pop()
        wall_ms = (perf_counter() - t0) * 1e3
        self.records.append(
            SpanRecord(
                name, (t0 - self._epoch) * 1e3, wall_ms, depth, span_id, parent_id
            )
        )
        return wall_ms

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time the enclosed block (recorded even if it raises)."""
        token = self.begin(name)
        try:
            yield
        finally:
            self.end(token)

    def wall_ms_by_name(self) -> Dict[str, Tuple[int, float]]:
        """``{name: (count, total wall ms)}`` over all closed spans."""
        out: Dict[str, Tuple[int, float]] = {}
        for rec in self.records:
            count, total = out.get(rec.name, (0, 0.0))
            out[rec.name] = (count + 1, total + rec.wall_ms)
        return out

    def __len__(self) -> int:
        return len(self.records)


def maybe_span(run: "Optional[object]", name: str):
    """``run.spans.span(name)`` when a telemetry run is attached, else a
    no-op context — the one-liner the batch drivers guard with."""
    if run is None:
        return nullcontext()
    return run.spans.span(name)
