"""Bounded columnar per-round sample series.

A :class:`RoundSeries` holds one run's per-round probe samples as
parallel columns (``round`` plus whatever the probes measured: informed
fraction, alive count, cluster count, cumulative messages/bits, ...).
Memory is bounded: when the kept rows reach ``cap`` the series halves
itself and doubles its sampling stride, so an n = 2^18 run with
thousands of rounds keeps a uniformly-thinned trajectory in O(cap)
space.  The *final* sample is never lost — engines push it through
:meth:`force` when a run finishes, which is what lets tests assert that
the series' last cumulative counters equal the final ``Metrics`` exactly
even after decimation.
"""

from __future__ import annotations

from typing import Any, Dict, List


def _py(value: Any) -> Any:
    """Plain-python coercion (numpy scalars → int/float) so series stay
    picklable and JSON-serialisable without a numpy dependency at read
    time."""
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    item = getattr(value, "item", None)
    return item() if callable(item) else value


class RoundSeries:
    """Columnar, decimating, append-only per-round samples."""

    def __init__(self, cap: int = 2048) -> None:
        if cap < 8:
            raise ValueError(f"series cap must be >= 8, got {cap}")
        self.cap = int(cap)
        self._cols: Dict[str, List[Any]] = {"round": []}
        self._appends = 0  # offered samples (kept or thinned away)
        self._stride = 1

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, **values: Any) -> None:
        """Offer one sample; kept iff it lands on the current stride."""
        if "round" not in values:
            raise ValueError("a round-series sample needs a 'round' value")
        keep = self._appends % self._stride == 0
        self._appends += 1
        if not keep:
            return
        self._push_row(values)
        if len(self._cols["round"]) >= self.cap:
            self._halve()

    def force(self, **values: Any) -> None:
        """Append bypassing decimation (the final-sample guarantee); a
        sample for the already-kept last round updates it in place.

        Forced rows still honour ``cap``: once the series fills, it
        re-thins like :meth:`append` does — but keeping the just-forced
        final row exact, so callers that force once per chunk (e.g. the
        vector engine's per-chunk flush) stay O(cap) instead of growing
        one row per force forever.
        """
        if "round" not in values:
            raise ValueError("a round-series sample needs a 'round' value")
        rounds = self._cols["round"]
        if rounds and rounds[-1] == values["round"]:
            last = len(rounds) - 1
            for name in set(self._cols) | set(values):
                if name not in self._cols:
                    self._cols[name] = [None] * len(rounds)
                if name in values:
                    self._cols[name][last] = _py(values[name])
            return
        self._push_row(values)
        if len(self._cols["round"]) >= self.cap:
            self._halve(keep_last=True)

    def _push_row(self, values: Dict[str, Any]) -> None:
        length = len(self._cols["round"])
        for name in values:
            if name not in self._cols:
                self._cols[name] = [None] * length
        for name, col in self._cols.items():
            col.append(_py(values[name]) if name in values else None)

    def _halve(self, keep_last: bool = False) -> None:
        for col in self._cols.values():
            if keep_last:
                tail = col[-1]
                col[:] = col[:-1][::2]
                col.append(tail)
            else:
                col[:] = col[::2]
        self._stride *= 2

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def decimated(self) -> bool:
        """True once at least one thinning pass has run."""
        return self._stride > 1

    @property
    def stride(self) -> int:
        return self._stride

    def to_columns(self) -> Dict[str, List[Any]]:
        """Column-name → value-list copy (parallel lengths)."""
        return {name: list(col) for name, col in self._cols.items()}

    def rows(self) -> List[Dict[str, Any]]:
        """The kept samples as row dicts, in round order."""
        names = list(self._cols)
        return [
            {name: self._cols[name][i] for name in names}
            for i in range(len(self._cols["round"]))
        ]

    def last(self) -> Dict[str, Any]:
        """The most recent kept sample (raises on an empty series)."""
        if not self._cols["round"]:
            raise IndexError("empty round series")
        return {name: col[-1] for name, col in self._cols.items()}

    def __len__(self) -> int:
        return len(self._cols["round"])
