"""Render a telemetry JSONL file for terminals (``repro report``).

Input is the record list of :func:`repro.obs.sink.read_jsonl`; output is
a phase × wall-clock table (aggregated over every run, plus per-run
detail for the first few) and a per-run round-series summary thinned to
a displayable row count.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Shown in the ``wall ms`` column when no span timed the phase.
EM_DASH = "—"

#: Runs given full per-run detail before the renderer switches to a
#: one-line-per-run roll-up.
_DETAIL_RUNS = 4


def _fmt(value: Any) -> str:
    if value is None:
        return EM_DASH
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _series_table(columns: Dict[str, List[Any]], max_rows: int) -> List[str]:
    names = ["round"] + [n for n in columns if n != "round"]
    total = len(columns["round"])
    if total <= max_rows:
        picks = list(range(total))
    else:
        # Evenly spaced display rows, always keeping first and last.
        picks = sorted({round(i * (total - 1) / (max_rows - 1)) for i in range(max_rows)})
    rows = [[_fmt(columns[n][i]) for n in names] for i in picks]
    widths = [
        max(len(name), *(len(row[j]) for row in rows)) for j, name in enumerate(names)
    ]
    lines = ["  " + "  ".join(name.rjust(widths[j]) for j, name in enumerate(names))]
    for row in rows:
        lines.append("  " + "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    if total > max_rows:
        lines.append(f"  ({total} samples, {len(picks)} shown)")
    return lines


def _phase_lines(phases: Dict[str, Dict[str, Any]], indent: str = "  ") -> List[str]:
    header = (
        f"{'phase':<22}{'rounds':>7}{'msgs':>10}{'bits':>13}{'wall ms':>10}"
    )
    lines = [indent + header, indent + "-" * len(header)]
    for name, st in phases.items():
        wall = st.get("wall_ms", 0.0)
        wall_s = f"{wall:.1f}" if wall else EM_DASH
        lines.append(
            indent
            + f"{name:<22}{st['rounds']:>7}{st['messages']:>10}"
            + f"{st['bits']:>13}{wall_s:>10}"
        )
    return lines


def _span_lines(spans: List[Dict[str, Any]], indent: str = "  ") -> List[str]:
    if any(isinstance(rec.get("id"), int) for rec in spans):
        return _span_tree_lines(spans, indent)
    # Flat name aggregation: the fallback for pre-span-tree files whose
    # span records carry no id/parent_id.
    totals: Dict[str, List[float]] = {}
    for rec in spans:
        entry = totals.setdefault(rec["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += rec["wall_ms"]
    header = f"{'span':<28}{'count':>7}{'wall ms':>10}"
    lines = [indent + header, indent + "-" * len(header)]
    for name, (count, wall) in totals.items():
        lines.append(indent + f"{name:<28}{count:>7}{wall:>10.1f}")
    return lines


def _span_tree_lines(spans: List[Dict[str, Any]], indent: str = "  ") -> List[str]:
    """Aggregate spans by their name *path* and indent nested phases.

    Span ids are monotonic in opening order, so a parent's id is always
    smaller than its children's — sorting the aggregated paths by their
    smallest member id lists every parent before its children and keeps
    siblings in first-open order.
    """
    by_id = {rec["id"]: rec for rec in spans if isinstance(rec.get("id"), int)}
    totals: Dict[tuple, List[float]] = {}
    for rec in spans:
        path = [rec["name"]]
        parent, seen = rec.get("parent_id"), set()
        while parent in by_id and parent not in seen:
            seen.add(parent)
            path.append(by_id[parent]["name"])
            parent = by_id[parent].get("parent_id")
        key = tuple(reversed(path))
        entry = totals.setdefault(key, [0, 0.0, rec.get("id", 0)])
        entry[0] += 1
        entry[1] += rec["wall_ms"]
        entry[2] = min(entry[2], rec.get("id", 0))
    header = f"{'span':<28}{'count':>7}{'wall ms':>10}"
    lines = [indent + header, indent + "-" * len(header)]
    for key in sorted(totals, key=lambda k: totals[k][2]):
        count, wall, _ = totals[key]
        label = "  " * (len(key) - 1) + key[-1]
        lines.append(indent + f"{label:<28}{count:>7}{wall:>10.1f}")
    return lines


def _picks(total: int, max_rows: int) -> List[int]:
    """Evenly spaced display rows, always keeping first and last."""
    if total <= max_rows:
        return list(range(total))
    return sorted({round(i * (total - 1) / (max_rows - 1)) for i in range(max_rows)})


def _front_lines(front: Dict[str, List[Any]], max_rows: int = 12) -> List[str]:
    """ASCII informed-front timeline: one bar per sampled round."""
    rounds = front.get("round") or []
    times = front.get("time") or []
    counts = front.get("informed") or []
    if not rounds or len(times) != len(rounds) or len(counts) != len(rounds):
        return []
    # Probe columns may carry None for rounds sampled before the
    # algorithm registered its probes (the round-0 baseline).
    counts = [c if isinstance(c, (int, float)) else 0 for c in counts]
    peak = max(max(counts), 1)
    width = 40
    lines = ["  informed front:"]
    for i in _picks(len(rounds), max_rows):
        bar = "#" * max(1 if counts[i] else 0, round(width * counts[i] / peak))
        lines.append(
            f"    r{rounds[i]:>4}  t={_fmt(times[i]):>8}  "
            f"{counts[i]:>8}  {bar}"
        )
    return lines


def render_critical_path(records: List[Dict[str, Any]], max_rows: int = 12) -> str:
    """Render the schema v2 ``path`` records of one telemetry file:
    the hop chain, the dilation attribution tables, the slack summary
    and an ASCII informed-front timeline.  Raises ``ValueError`` when
    the file has no path records (run with ``--trace`` to produce them).
    """
    runs = {r["id"]: r for r in records if r.get("type") == "run"}
    traces = {r.get("run"): r for r in records if r.get("type") == "trace"}
    paths = [r for r in records if r.get("type") == "path"]
    if not paths:
        raise ValueError(
            "no path records in this telemetry file — "
            "produce one with `repro run --engine event --trace out.jsonl`"
        )
    lines: List[str] = []
    for rec in paths:
        rid = rec.get("run")
        cfg = runs.get(rid, {}).get("config", {})
        desc = " ".join(
            f"{k}={_fmt(cfg[k])}" for k in ("algorithm", "n", "seed") if k in cfg
        )
        if lines:
            lines.append("")
        head = (
            f"run {rid} ({desc}): critical path {rec.get('length')} hop(s), "
            f"sim_time {_fmt(rec.get('sim_time'))}"
        )
        if "rounds" in rec:
            head += (
                f", rounds {rec['rounds']}, dilation {_fmt(rec.get('dilation'))}"
            )
        trace = traces.get(rid)
        if trace:
            head += f", contacts {trace.get('contacts')}"
        lines.append(head)

        hops = rec.get("hops") or {}
        names = [
            n for n in ("round", "kind", "src", "dst", "start", "complete", "delay")
            if n in hops
        ]
        total = len(hops.get("round", []))
        if names and total:
            rows = [
                ["hop"] + names,
            ]
            for i in _picks(total, max_rows):
                rows.append([str(i)] + [_fmt(hops[n][i]) for n in names])
            widths = [max(len(r[j]) for r in rows) for j in range(len(rows[0]))]
            for k, row in enumerate(rows):
                lines.append(
                    "  " + "  ".join(c.rjust(widths[j]) for j, c in enumerate(row))
                )
                if k == 0:
                    lines.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
            if total > max_rows:
                lines.append(f"  ({total} hops, {len(_picks(total, max_rows))} shown)")

        # Re-rank by share: the JSONL writer sorts object keys, so the
        # exported dict's insertion order is alphabetical, not ranked.
        node_attr = rec.get("node_attribution") or {}
        if node_attr:
            lines.append("  top nodes by dilation share:")
            for node, share in sorted(node_attr.items(), key=lambda kv: -kv[1])[:5]:
                lines.append(f"    node {node:>6}  {share * 100:6.1f}%")
        edge_attr = rec.get("edge_attribution") or {}
        if edge_attr:
            lines.append("  top edges by dilation share:")
            for edge, share in sorted(edge_attr.items(), key=lambda kv: -kv[1])[:5]:
                lines.append(f"    {edge:>12}  {share * 100:6.1f}%")

        slack = rec.get("slack") or {}
        if slack.get("counts"):
            lines.append(
                f"  slack: mean {_fmt(slack.get('mean'))}, "
                f"max {_fmt(slack.get('max'))} over "
                f"{sum(slack['counts'])} deliveries in "
                f"{len(slack['counts'])} bins"
            )
        front = rec.get("front") or {}
        lines.extend(_front_lines(front, max_rows))
    return "\n".join(lines)


def render_report(records: List[Dict[str, Any]], max_series_rows: int = 12) -> str:
    """The human-readable rendering of one telemetry file."""
    meta = records[0] if records and records[0].get("type") == "meta" else {}
    runs = [r for r in records if r.get("type") == "run"]
    spans: Dict[int, List[Dict[str, Any]]] = {}
    series: Dict[int, Dict[str, Any]] = {}
    events: Dict[int, int] = {}
    paths: Dict[int, Dict[str, Any]] = {}
    for rec in records:
        if rec.get("type") == "span":
            spans.setdefault(rec["run"], []).append(rec)
        elif rec.get("type") == "series":
            series[rec["run"]] = rec
        elif rec.get("type") == "path":
            paths[rec["run"]] = rec
        elif rec.get("type") == "event":
            events[rec["run"]] = events.get(rec["run"], 0) + 1

    lines = [
        f"telemetry: schema {meta.get('schema', '?')}, {len(runs)} run(s), "
        f"probe_every={meta.get('probe_every', '?')}"
    ]

    # Aggregate phase × wall-clock over every run that recorded phases.
    agg: Dict[str, Dict[str, Any]] = {}
    for run in runs:
        for name, st in (run.get("phases") or {}).items():
            cell = agg.setdefault(
                name, {"rounds": 0, "messages": 0, "bits": 0, "wall_ms": 0.0}
            )
            for key in cell:
                cell[key] += st.get(key, 0)
    if agg:
        lines.append("")
        lines.append(f"phase x wall-clock (summed over {len(runs)} run(s)):")
        lines.extend(_phase_lines(agg))

    for run in runs[:_DETAIL_RUNS]:
        rid = run["id"]
        cfg = run.get("config", {})
        desc = " ".join(f"{k}={_fmt(v)}" for k, v in cfg.items())
        lines.append("")
        lines.append(f"run {rid}: {desc}")
        summary = run.get("summary", {})
        if summary:
            lines.append(
                "  summary: " + " ".join(f"{k}={_fmt(v)}" for k, v in summary.items())
            )
        if run.get("phases"):
            lines.extend(_phase_lines(run["phases"]))
        elif spans.get(rid):
            lines.extend(_span_lines(spans[rid]))
        if rid in series:
            rec = series[rid]
            thin = " (decimated)" if rec.get("decimated") else ""
            lines.append(f"  round series{thin}:")
            lines.extend(_series_table(rec["columns"], max_series_rows))
        if rid in paths:
            p = paths[rid]
            note = (
                f"  critical path: {p.get('length')} hop(s), "
                f"sim_time {_fmt(p.get('sim_time'))}"
            )
            if "dilation" in p:
                note += f", dilation {_fmt(p['dilation'])}"
            lines.append(note + " (render with --critical-path)")
        if events.get(rid):
            lines.append(f"  trace events: {events[rid]}")

    if len(runs) > _DETAIL_RUNS:
        lines.append("")
        for run in runs[_DETAIL_RUNS:]:
            summary = run.get("summary", {})
            brief = " ".join(
                f"{k}={_fmt(summary[k])}"
                for k in ("rounds", "rounds_mean", "messages", "messages_total", "success", "success_rate")
                if k in summary
            )
            lines.append(f"run {run['id']}: {brief}")
    return "\n".join(lines)
