"""Render a telemetry JSONL file for terminals (``repro report``).

Input is the record list of :func:`repro.obs.sink.read_jsonl`; output is
a phase × wall-clock table (aggregated over every run, plus per-run
detail for the first few) and a per-run round-series summary thinned to
a displayable row count.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Shown in the ``wall ms`` column when no span timed the phase.
EM_DASH = "—"

#: Runs given full per-run detail before the renderer switches to a
#: one-line-per-run roll-up.
_DETAIL_RUNS = 4


def _fmt(value: Any) -> str:
    if value is None:
        return EM_DASH
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _series_table(columns: Dict[str, List[Any]], max_rows: int) -> List[str]:
    names = ["round"] + [n for n in columns if n != "round"]
    total = len(columns["round"])
    if total <= max_rows:
        picks = list(range(total))
    else:
        # Evenly spaced display rows, always keeping first and last.
        picks = sorted({round(i * (total - 1) / (max_rows - 1)) for i in range(max_rows)})
    rows = [[_fmt(columns[n][i]) for n in names] for i in picks]
    widths = [
        max(len(name), *(len(row[j]) for row in rows)) for j, name in enumerate(names)
    ]
    lines = ["  " + "  ".join(name.rjust(widths[j]) for j, name in enumerate(names))]
    for row in rows:
        lines.append("  " + "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    if total > max_rows:
        lines.append(f"  ({total} samples, {len(picks)} shown)")
    return lines


def _phase_lines(phases: Dict[str, Dict[str, Any]], indent: str = "  ") -> List[str]:
    header = (
        f"{'phase':<22}{'rounds':>7}{'msgs':>10}{'bits':>13}{'wall ms':>10}"
    )
    lines = [indent + header, indent + "-" * len(header)]
    for name, st in phases.items():
        wall = st.get("wall_ms", 0.0)
        wall_s = f"{wall:.1f}" if wall else EM_DASH
        lines.append(
            indent
            + f"{name:<22}{st['rounds']:>7}{st['messages']:>10}"
            + f"{st['bits']:>13}{wall_s:>10}"
        )
    return lines


def _span_lines(spans: List[Dict[str, Any]], indent: str = "  ") -> List[str]:
    totals: Dict[str, List[float]] = {}
    for rec in spans:
        entry = totals.setdefault(rec["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += rec["wall_ms"]
    header = f"{'span':<28}{'count':>7}{'wall ms':>10}"
    lines = [indent + header, indent + "-" * len(header)]
    for name, (count, wall) in totals.items():
        lines.append(indent + f"{name:<28}{count:>7}{wall:>10.1f}")
    return lines


def render_report(records: List[Dict[str, Any]], max_series_rows: int = 12) -> str:
    """The human-readable rendering of one telemetry file."""
    meta = records[0] if records and records[0].get("type") == "meta" else {}
    runs = [r for r in records if r.get("type") == "run"]
    spans: Dict[int, List[Dict[str, Any]]] = {}
    series: Dict[int, Dict[str, Any]] = {}
    events: Dict[int, int] = {}
    for rec in records:
        if rec.get("type") == "span":
            spans.setdefault(rec["run"], []).append(rec)
        elif rec.get("type") == "series":
            series[rec["run"]] = rec
        elif rec.get("type") == "event":
            events[rec["run"]] = events.get(rec["run"], 0) + 1

    lines = [
        f"telemetry: schema {meta.get('schema', '?')}, {len(runs)} run(s), "
        f"probe_every={meta.get('probe_every', '?')}"
    ]

    # Aggregate phase × wall-clock over every run that recorded phases.
    agg: Dict[str, Dict[str, Any]] = {}
    for run in runs:
        for name, st in (run.get("phases") or {}).items():
            cell = agg.setdefault(
                name, {"rounds": 0, "messages": 0, "bits": 0, "wall_ms": 0.0}
            )
            for key in cell:
                cell[key] += st.get(key, 0)
    if agg:
        lines.append("")
        lines.append(f"phase x wall-clock (summed over {len(runs)} run(s)):")
        lines.extend(_phase_lines(agg))

    for run in runs[:_DETAIL_RUNS]:
        rid = run["id"]
        cfg = run.get("config", {})
        desc = " ".join(f"{k}={_fmt(v)}" for k, v in cfg.items())
        lines.append("")
        lines.append(f"run {rid}: {desc}")
        summary = run.get("summary", {})
        if summary:
            lines.append(
                "  summary: " + " ".join(f"{k}={_fmt(v)}" for k, v in summary.items())
            )
        if run.get("phases"):
            lines.extend(_phase_lines(run["phases"]))
        elif spans.get(rid):
            lines.extend(_span_lines(spans[rid]))
        if rid in series:
            rec = series[rid]
            thin = " (decimated)" if rec.get("decimated") else ""
            lines.append(f"  round series{thin}:")
            lines.extend(_series_table(rec["columns"], max_series_rows))
        if events.get(rid):
            lines.append(f"  trace events: {events[rid]}")

    if len(runs) > _DETAIL_RUNS:
        lines.append("")
        for run in runs[_DETAIL_RUNS:]:
            summary = run.get("summary", {})
            brief = " ".join(
                f"{k}={_fmt(summary[k])}"
                for k in ("rounds", "rounds_mean", "messages", "messages_total", "success", "success_rate")
                if k in summary
            )
            lines.append(f"run {run['id']}: {brief}")
    return "\n".join(lines)
