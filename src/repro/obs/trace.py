"""Contact-level causal tracing and critical-path extraction.

The event tier (:mod:`repro.sim.schedule`) computes a simulated
completion time without ever explaining it.  This module answers the
question the round counter cannot: *which node, edge or delay made this
run slow*.

A :class:`ContactTrace` is the columnar log the
:class:`~repro.sim.schedule.EventScheduler` fills when tracing is on —
one row per declared contact (src, dst, start, completion, round, kind,
arrived), appended in bulk per committed round, never per message.  On
top of it:

* :meth:`ContactTrace.critical_path` reconstructs the causal chain to
  ``sim_time``.  Causality is exactly the scheduler's clock fold: a
  contact starting at ``clock[src] = t > 0`` depends on the *latest*
  earlier-round completion at ``src`` that equals ``t`` (clock entries
  are assigned from completion values, so the match is exact, not
  approximate).  The parent's round is strictly smaller, which is why a
  critical path can never be longer than the committed round count —
  the invariant benchmark E20 gates on every fingerprint configuration.
* :meth:`ContactTrace.slack` replays the clock fold to measure, per
  delivered contact, how much later the receiver's round clock ended up
  than this delivery — 0 means the contact was locally *tight* (it set
  its receiver's clock), large slack means the delivery was off the
  critical frontier.
* :meth:`ContactTrace.front` is the reached-node timeline: how many
  distinct nodes had received at least one contact by each round, and
  at what simulated time.

:class:`CriticalPath` carries the extracted hop chain plus dilation
attribution: each hop's delay is split evenly between its two endpoints
(a straggler contact is slow because *an endpoint* is slow — the delay
models are endpoint/edge functions), and credited in full to the
directed edge.  Shares are normalised by the path's total time, so "the
straggler nodes own 80% of the critical path" is a direct readout.

:func:`trace_record` / :func:`path_record` serialise both into the
telemetry schema v2 JSONL records (:mod:`repro.obs.sink`).

The trace is deliberately *uncapped*: critical-path extraction needs
every contact (a decimated log loses exactly the tight predecessors the
walk follows), unlike the debug :class:`~repro.sim.schedule.EventQueue`
whose capped mode may thin old events.  Memory is six scalars per
contact — a few MiB for the n = 2^14 bench configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ContactTrace", "CriticalPath", "path_record", "trace_record"]

#: Attribution entries kept in exported records (full tables stay on the
#: in-memory objects; JSONL carries the ranked head).
TOP_ATTRIBUTION = 16

#: Contacts kept in an exported ``trace`` record before even-stride
#: subsampling kicks in (the in-memory trace is never thinned).
TRACE_RECORD_CAP = 65536


@dataclass
class CriticalPath:
    """One extracted causal chain to ``sim_time`` plus attribution.

    ``hops`` is columnar, oldest hop first: parallel lists ``contact``
    (row index into the trace), ``src``, ``dst``, ``round``, ``kind``,
    ``start``, ``complete`` and ``delay``.  ``node_share`` /
    ``edge_share`` are fractions of the path's total time (half a hop's
    delay per endpoint; the full delay per directed edge).
    """

    length: int
    sim_time: float
    hops: Dict[str, List[Any]] = field(default_factory=dict)
    node_share: Dict[int, float] = field(default_factory=dict)
    edge_share: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def top_nodes(self, k: int = 5) -> List[Tuple[int, float]]:
        """The ``k`` heaviest dilation contributors, share-descending."""
        ranked = sorted(self.node_share.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def top_edges(self, k: int = 5) -> List[Tuple[Tuple[int, int], float]]:
        ranked = sorted(self.edge_share.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


class ContactTrace:
    """Columnar per-contact log of one event-tier execution.

    Filled by :meth:`record` — one call per committed round with the
    scheduler's already-materialised bulk arrays (the arrays are fresh
    per commit, so they are kept by reference; nothing is copied on the
    hot path).  Columns materialise lazily on first read.
    """

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self._chunks: List[tuple] = []
        self._count = 0
        self._columns: Optional[Dict[str, np.ndarray]] = None

    def record(
        self,
        round_no: int,
        srcs: np.ndarray,
        dsts: np.ndarray,
        starts: np.ndarray,
        completes: np.ndarray,
        arrived: np.ndarray,
        push: np.ndarray,
    ) -> None:
        """Append one committed round's contacts (bulk, by reference)."""
        self._chunks.append(
            (int(round_no), srcs, dsts, starts, completes, arrived, push)
        )
        self._count += len(srcs)
        self._columns = None

    def __len__(self) -> int:
        return self._count

    @property
    def sim_time(self) -> float:
        """Latest completion over all recorded contacts (0 if empty)."""
        if not self._count:
            return 0.0
        return float(max(np.max(c[4]) for c in self._chunks))

    def columns(self) -> Dict[str, np.ndarray]:
        """The materialised columnar view (cached until the next append)."""
        if self._columns is None:
            if not self._chunks:
                self._columns = {
                    "src": np.zeros(0, dtype=np.int64),
                    "dst": np.zeros(0, dtype=np.int64),
                    "start": np.zeros(0, dtype=np.float64),
                    "complete": np.zeros(0, dtype=np.float64),
                    "round": np.zeros(0, dtype=np.int64),
                    "arrived": np.zeros(0, dtype=bool),
                    "push": np.zeros(0, dtype=bool),
                }
            else:
                rounds = np.concatenate(
                    [np.full(len(c[1]), c[0], dtype=np.int64) for c in self._chunks]
                )
                self._columns = {
                    "src": np.concatenate([c[1] for c in self._chunks]),
                    "dst": np.concatenate([c[2] for c in self._chunks]),
                    "start": np.concatenate(
                        [np.asarray(c[3], dtype=np.float64) for c in self._chunks]
                    ),
                    "complete": np.concatenate(
                        [np.asarray(c[4], dtype=np.float64) for c in self._chunks]
                    ),
                    "round": rounds,
                    "arrived": np.concatenate([c[5] for c in self._chunks]),
                    "push": np.concatenate(
                        [np.asarray(c[6], dtype=bool) for c in self._chunks]
                    ),
                }
        return self._columns

    # -- causal analysis ------------------------------------------------

    def critical_path(self) -> CriticalPath:
        """Extract the causal chain ending at the latest completion.

        The walk inverts the scheduler's clock fold.  Clock *updates*
        are: every contact at its source (initiating advances the
        source's clock) and every delivered contact at its destination.
        A contact with ``start = t > 0`` in round ``r`` was enabled by
        the latest update at its source with time exactly ``t`` and
        round ``< r`` — equality is exact because starts are read from
        the clock array, whose entries are assigned from completion
        values.  Rounds strictly decrease along the walk, so the path
        has at most ``max(round)`` hops.
        """
        if not self._count:
            return CriticalPath(length=0, sim_time=0.0)

        # The walk stays chunk-local: it visits at most ``rounds`` hops,
        # each resolved by masked scans over one round's arrays, so the
        # global columnar view (and a fortiori a global sort of every
        # update) never needs materialising — at large n either of those
        # dominated the whole traced run.
        chunks: List[tuple] = []  # (round, offset, src, dst, start, complete, arrived, push)
        off = 0
        for c in self._chunks:
            chunks.append((int(c[0]), off) + tuple(c[1:]))
            off += len(c[1])
        by_round: Dict[int, List[tuple]] = {}
        for ch in chunks:
            by_round.setdefault(ch[0], []).append(ch)
        round_keys = sorted(by_round)

        # Terminal contact: first global occurrence of the latest
        # completion (matching np.argmax over the concatenated column).
        sim_time, cur = -1.0, None
        for ch in chunks:
            li = int(np.argmax(ch[5]))
            tm = float(ch[5][li])
            if tm > sim_time:
                sim_time, cur = tm, (ch, li)

        chain: List[tuple] = [cur]
        while float(cur[0][4][cur[1]]) > 0.0:
            ch, li = cur
            s, t, r = int(ch[2][li]), float(ch[4][li]), ch[0]
            # Latest update at node s with time <= t and round < r;
            # ties broken by higher round, then higher contact index —
            # the clock fold guarantees some earlier update equals t
            # exactly, so the descending scan usually stops at r - 1.
            best_time, best = -1.0, None
            for rr in reversed([q for q in round_keys if q < r]):
                for ch2 in by_round[rr]:
                    _, _, srcs2, dsts2, _, completes2, arrived2, _ = ch2
                    # Node-first filtering: a node initiates at most a
                    # couple of contacts per round and fan-in is small,
                    # so the candidate set is tiny — cheaper than
                    # masking the whole chunk by time as well.
                    tmax, cand = -1.0, -1
                    for j in np.nonzero(srcs2 == s)[0]:
                        tj = float(completes2[j])
                        if tj <= t and (tj > tmax or (tj == tmax and j > cand)):
                            tmax, cand = tj, int(j)
                    for j in np.nonzero(dsts2 == s)[0]:
                        if not arrived2[j]:
                            continue
                        tj = float(completes2[j])
                        if tj <= t and (tj > tmax or (tj == tmax and j > cand)):
                            tmax, cand = tj, int(j)
                    if cand < 0:
                        continue
                    if tmax > best_time or (
                        tmax == best_time
                        and best is not None
                        and ch2[1] + cand > best[0][1] + best[1]
                    ):
                        best_time, best = tmax, (ch2, cand)
                if best_time == t:
                    break
            if best is None:
                break  # no earlier-round cause recorded (partial trace)
            cur = best
            chain.append(cur)
        chain.reverse()

        delays = [float(ch[5][li]) - float(ch[4][li]) for ch, li in chain]
        total = sum(delays)
        node_share: Dict[int, float] = {}
        edge_share: Dict[Tuple[int, int], float] = {}
        if total > 0.0:
            for (ch, li), d in zip(chain, delays):
                u, w = int(ch[2][li]), int(ch[3][li])
                node_share[u] = node_share.get(u, 0.0) + 0.5 * d / total
                node_share[w] = node_share.get(w, 0.0) + 0.5 * d / total
                edge_share[(u, w)] = edge_share.get((u, w), 0.0) + d / total
        hops = {
            "contact": [ch[1] + li for ch, li in chain],
            "src": [int(ch[2][li]) for ch, li in chain],
            "dst": [int(ch[3][li]) for ch, li in chain],
            "round": [ch[0] for ch, _ in chain],
            "kind": ["push" if ch[7][li] else "pull" for ch, li in chain],
            "start": [round(float(ch[4][li]), 6) for ch, li in chain],
            "complete": [round(float(ch[5][li]), 6) for ch, li in chain],
            "delay": [round(d, 6) for d in delays],
        }
        return CriticalPath(
            length=len(chain),
            sim_time=sim_time,
            hops=hops,
            node_share=node_share,
            edge_share=edge_share,
        )

    def slack(self) -> np.ndarray:
        """Per-delivered-contact slack, in trace order.

        Replays the clock fold chunk by chunk: a delivered contact's
        slack is how far its receiver's clock ended up *beyond* this
        delivery once the whole round folded — 0 means this delivery
        set the receiver's clock (locally tight).
        """
        clock = np.zeros(self.n, dtype=np.float64)
        out: List[np.ndarray] = []
        for _, srcs, dsts, _, completes, arrived, _ in self._chunks:
            completes = np.asarray(completes, dtype=np.float64)
            np.maximum.at(clock, srcs, completes)
            if arrived.any():
                delivered = dsts[arrived]
                np.maximum.at(clock, delivered, completes[arrived])
                out.append(clock[delivered] - completes[arrived])
        if not out:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(out)

    def slack_histogram(self, bins: int = 8) -> Dict[str, Any]:
        """``{edges, counts, mean, max}`` of the slack distribution."""
        slacks = self.slack()
        if not len(slacks):
            return {"edges": [], "counts": [], "mean": 0.0, "max": 0.0}
        counts, edges = np.histogram(slacks, bins=bins)
        return {
            "edges": [round(float(e), 6) for e in edges],
            "counts": [int(c) for c in counts],
            "mean": round(float(slacks.mean()), 6),
            "max": round(float(slacks.max()), 6),
        }

    def front(self) -> Dict[str, List[Any]]:
        """Reached-node timeline: per round, the cumulative count of
        distinct nodes that received at least one contact, and the
        running-max completion time.  (The protocol-aware informed
        series from telemetry is preferred when available — this is the
        trace-only fallback.)"""
        seen = np.zeros(self.n, dtype=bool)
        rounds: List[int] = []
        times: List[float] = []
        counts: List[int] = []
        tmax = 0.0
        for round_no, _, dsts, _, completes, arrived, _ in self._chunks:
            if len(completes):
                tmax = max(tmax, float(np.asarray(completes).max()))
            if arrived.any():
                seen[dsts[arrived]] = True
            rounds.append(int(round_no))
            times.append(round(tmax, 6))
            counts.append(int(seen.sum()))
        return {"round": rounds, "time": times, "informed": counts}


def trace_record(trace: ContactTrace, cap: int = TRACE_RECORD_CAP) -> Dict[str, Any]:
    """Serialise a trace into the schema v2 ``trace`` record payload.

    Records beyond ``cap`` contacts subsample at an even stride (always
    keeping the first and last row) and say so via ``subsampled`` — the
    in-memory trace, and therefore the critical path, is never thinned.
    """
    cols = trace.columns()
    m = len(trace)
    if m > cap:
        pick = np.unique(np.linspace(0, m - 1, cap).round().astype(np.int64))
        subsampled = True
    else:
        pick = np.arange(m)
        subsampled = False
    return {
        "type": "trace",
        "contacts": m,
        "sim_time": round(trace.sim_time, 6),
        "subsampled": subsampled,
        "columns": {
            "src": [int(v) for v in cols["src"][pick]],
            "dst": [int(v) for v in cols["dst"][pick]],
            "start": [round(float(v), 6) for v in cols["start"][pick]],
            "complete": [round(float(v), 6) for v in cols["complete"][pick]],
            "round": [int(v) for v in cols["round"][pick]],
            "kind": ["push" if p else "pull" for p in cols["push"][pick]],
            "arrived": [bool(a) for a in cols["arrived"][pick]],
        },
    }


def path_record(
    trace: ContactTrace,
    path: CriticalPath,
    *,
    rounds: Optional[int] = None,
    front: Optional[Dict[str, List[Any]]] = None,
) -> Dict[str, Any]:
    """Serialise a critical path (+ attribution, slack, front) into the
    schema v2 ``path`` record payload.  ``front`` overrides the trace's
    reached-node fallback with a protocol-aware informed timeline."""
    record: Dict[str, Any] = {
        "type": "path",
        "length": int(path.length),
        "sim_time": round(float(path.sim_time), 6),
        "hops": path.hops,
        "node_attribution": {
            str(node): round(share, 6)
            for node, share in path.top_nodes(TOP_ATTRIBUTION)
        },
        "edge_attribution": {
            f"{u}->{w}": round(share, 6)
            for (u, w), share in path.top_edges(TOP_ATTRIBUTION)
        },
        "slack": trace.slack_histogram(),
        "front": front if front is not None else trace.front(),
    }
    if rounds is not None:
        record["rounds"] = int(rounds)
        record["dilation"] = round(float(path.sim_time) / max(int(rounds), 1), 6)
    return record
