"""Observability layer: spans, per-round probes, and JSONL telemetry.

The simulation stack accounts *what* happened (rounds, messages, bits —
:mod:`repro.sim.metrics`); this package adds *when* and *how it evolved*:

* :mod:`repro.obs.spans` — nestable wall-clock timers
  (``perf_counter``-based) attached to ``Metrics`` phases and to the
  batch engines' chunk/phase drivers;
* :mod:`repro.obs.probes` — a bounded columnar per-round sample series
  (informed fraction, alive count, cluster count, cumulative
  messages/bits), decimating above a cap so n = 2^18 runs stay cheap;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` collector that
  every engine threads through (``broadcast(telemetry=)``,
  ``run_replications(telemetry=)``, ``RunSpec.telemetry``);
* :mod:`repro.obs.trace` — contact-level causal tracing on the event
  tier: the columnar :class:`ContactTrace` log, critical-path
  extraction with per-node/per-edge dilation attribution, slack
  histograms and informed-front timelines (telemetry schema v2);
* :mod:`repro.obs.sink` — the JSONL export/import/validation layer;
* :mod:`repro.obs.report` — the ``repro report`` renderer (including
  ``--critical-path``).

Telemetry is strictly opt-in and zero-cost when off: the sequential
engine's commit path is byte-for-byte the pre-telemetry code (probes
ride the existing ``commit_hooks`` mechanism), and the batch runners
guard on a single ``None`` check per accounting commit.  The E18 bench
gates the overhead.
"""

from repro.obs.probes import RoundSeries
from repro.obs.report import render_critical_path, render_report
from repro.obs.sink import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetrySink,
    read_jsonl,
    validate_records,
    write_jsonl,
)
from repro.obs.spans import SpanRecord, SpanRecorder, maybe_span
from repro.obs.telemetry import (
    SUPPORTED_SCHEMAS,
    TELEMETRY_SCHEMA_V2,
    RunTelemetry,
    Telemetry,
    TelemetryConfig,
)
from repro.obs.trace import ContactTrace, CriticalPath, path_record, trace_record

__all__ = [
    "ContactTrace",
    "CriticalPath",
    "RoundSeries",
    "RunTelemetry",
    "SUPPORTED_SCHEMAS",
    "SpanRecord",
    "SpanRecorder",
    "TELEMETRY_SCHEMA_V2",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySink",
    "maybe_span",
    "path_record",
    "read_jsonl",
    "render_critical_path",
    "render_report",
    "trace_record",
    "validate_records",
    "write_jsonl",
]
