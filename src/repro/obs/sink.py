"""JSONL telemetry export, import, and schema validation.

One telemetry file is a sequence of JSON objects, one per line, in a
fixed record order: a ``meta`` header, then per run (ascending ``id``) a
``run`` record followed by its ``span``, ``series`` and ``event``
records.  The schema (version :data:`TELEMETRY_SCHEMA_VERSION`, also
documented in the README "Observability" section):

``meta``
    ``schema`` (int), ``generator`` (str), ``probe_every`` (int),
    ``series_cap`` (int), ``runs`` (int).
``run``
    ``id`` (int), ``config`` (object: engine/algorithm/n/seed/...),
    ``summary`` (object: rounds/messages/bits/success... or the vector
    chunk aggregates), ``phases`` (object name → {rounds, messages,
    bits, max_fanin, wall_ms}, or null for vector chunks).
``span``
    ``run`` (int), ``name`` (str), ``start_ms``/``wall_ms`` (float,
    wall_ms >= 0), ``depth`` (int >= 0).
``series``
    ``run`` (int), ``probe_every`` (int), ``decimated`` (bool),
    ``stride`` (int), ``columns`` (object name → equal-length arrays,
    always including ``round``).
``event``
    ``run`` (int), ``round`` (int), ``kind`` (str), ``data`` (object).

:func:`validate_records` checks all of this and is what the CI
telemetry smoke leg (and ``repro report``) runs against a file before
trusting it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION

_RECORD_TYPES = ("meta", "run", "span", "series", "event")


def write_jsonl(records, path: str) -> int:
    """Write records (dicts) as JSONL; returns how many were written."""
    count = 0
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL telemetry file back into record dicts."""
    records = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON ({exc})") from exc
    return records


def validate_records(records: List[Dict[str, Any]]) -> List[str]:
    """Schema-check records; returns problem strings (empty = valid)."""
    problems: List[str] = []
    if not records:
        return ["empty telemetry file (no records)"]
    # JSONL lines parse to any JSON value; a bare list/number/string is a
    # malformed file, not a crash (rec.get would raise AttributeError).
    non_dicts = [
        f"record {i}: not an object (got {type(rec).__name__})"
        for i, rec in enumerate(records)
        if not isinstance(rec, dict)
    ]
    if non_dicts:
        return non_dicts
    head = records[0]
    if head.get("type") != "meta":
        problems.append(f"first record must be 'meta', got {head.get('type')!r}")
    elif head.get("schema") != TELEMETRY_SCHEMA_VERSION:
        problems.append(
            f"unsupported schema {head.get('schema')!r} "
            f"(expected {TELEMETRY_SCHEMA_VERSION})"
        )
    run_ids = set()
    for i, rec in enumerate(records):
        kind = rec.get("type")
        where = f"record {i}"
        if kind not in _RECORD_TYPES:
            problems.append(f"{where}: unknown type {kind!r}")
            continue
        if kind == "run":
            if not isinstance(rec.get("id"), int):
                problems.append(f"{where}: run record without integer 'id'")
                continue
            run_ids.add(rec["id"])
            if not isinstance(rec.get("config"), dict):
                problems.append(f"{where}: run {rec['id']} has no config object")
            if not isinstance(rec.get("summary"), dict):
                problems.append(f"{where}: run {rec['id']} has no summary object")
        elif kind in ("span", "series", "event"):
            if rec.get("run") not in run_ids:
                problems.append(
                    f"{where}: {kind} references unknown run {rec.get('run')!r}"
                )
        if kind == "span":
            if not isinstance(rec.get("name"), str):
                problems.append(f"{where}: span without a name")
            wall = rec.get("wall_ms")
            if not isinstance(wall, (int, float)) or wall < 0:
                problems.append(f"{where}: span wall_ms must be >= 0, got {wall!r}")
            depth = rec.get("depth")
            if not isinstance(depth, int) or depth < 0:
                problems.append(f"{where}: span depth must be >= 0, got {depth!r}")
        elif kind == "series":
            columns = rec.get("columns")
            if not isinstance(columns, dict) or "round" not in columns:
                problems.append(f"{where}: series needs a 'round' column")
            else:
                lengths = {name: len(col) for name, col in columns.items()}
                if len(set(lengths.values())) > 1:
                    problems.append(f"{where}: ragged series columns {lengths}")
        elif kind == "event":
            if not isinstance(rec.get("kind"), str):
                problems.append(f"{where}: event without a kind")
            if not isinstance(rec.get("round"), int):
                problems.append(f"{where}: event without an integer round")
    if head.get("type") == "meta" and isinstance(head.get("runs"), int):
        if head["runs"] != len(run_ids):
            problems.append(
                f"meta announces {head['runs']} runs, file has {len(run_ids)}"
            )
    return problems


class TelemetrySink:
    """A JSONL destination for one :class:`~repro.obs.telemetry.Telemetry`."""

    def __init__(self, path: str) -> None:
        self.path = path

    def write(self, telemetry) -> int:
        """Export the collector; returns the record count."""
        return write_jsonl(telemetry.records(), self.path)

    def read(self) -> List[Dict[str, Any]]:
        return read_jsonl(self.path)

    def validate(self) -> List[str]:
        return validate_records(self.read())
