"""JSONL telemetry export, import, and schema validation.

One telemetry file is a sequence of JSON objects, one per line, in a
fixed record order: a ``meta`` header, then per run (ascending ``id``) a
``run`` record followed by its ``span``, ``series``, ``trace``/``path``
(schema v2 only) and ``event`` records.  The schema (versions
:data:`SUPPORTED_SCHEMAS`, also documented in the README
"Observability" / "Tracing & critical paths" sections):

``meta``
    ``schema`` (int), ``generator`` (str), ``probe_every`` (int),
    ``series_cap`` (int), ``runs`` (int).
``run``
    ``id`` (int), ``config`` (object: engine/algorithm/n/seed/...),
    ``summary`` (object: rounds/messages/bits/success... or the vector
    chunk aggregates), ``phases`` (object name → {rounds, messages,
    bits, max_fanin, wall_ms}, or null for vector chunks).
``span``
    ``run`` (int), ``name`` (str), ``start_ms``/``wall_ms`` (float,
    wall_ms >= 0), ``depth`` (int >= 0); optionally ``id`` (int >= 0)
    and ``parent_id`` (int or null) so nested span trees survive the
    round-trip (absent in pre-span-tree files, which stay valid).
``series``
    ``run`` (int), ``probe_every`` (int), ``decimated`` (bool),
    ``stride`` (int), ``columns`` (object name → equal-length arrays,
    always including ``round``).
``trace`` (v2)
    ``run`` (int), ``contacts`` (int), ``sim_time`` (number),
    ``subsampled`` (bool), ``columns`` (object of equal-length arrays:
    ``src``/``dst``/``start``/``complete``/``round``/``kind``/
    ``arrived``) — the contact-level causal log
    (:mod:`repro.obs.trace`).
``path`` (v2)
    ``run`` (int), ``length`` (int), ``sim_time`` (number), ``hops``
    (object of equal-length arrays), ``node_attribution`` /
    ``edge_attribution`` (objects: id → dilation share),
    ``slack`` (object: edges/counts/mean/max), ``front`` (object:
    round/time/informed), optionally ``rounds``/``dilation``.
``event``
    ``run`` (int), ``round`` (int), ``kind`` (str), ``data`` (object).

A v1 file must not contain ``trace``/``path`` records (that is the
mixed-version shape :func:`validate_records` rejects), and a file may
only carry one meta header.  :func:`validate_records` checks all of
this and is what the CI telemetry smoke legs (and ``repro report``) run
against a file before trusting it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.telemetry import (
    SUPPORTED_SCHEMAS,
    TELEMETRY_SCHEMA_V2,
    TELEMETRY_SCHEMA_VERSION,
)

_RECORD_TYPES = ("meta", "run", "span", "series", "trace", "path", "event")

#: Record types only the v2 schema admits.
_V2_TYPES = ("trace", "path")

#: Required equal-length columns of a ``trace`` record.
_TRACE_COLUMNS = ("src", "dst", "start", "complete", "round", "kind", "arrived")


def write_jsonl(records, path: str) -> int:
    """Write records (dicts) as JSONL; returns how many were written."""
    count = 0
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL telemetry file back into record dicts."""
    records = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON ({exc})") from exc
    return records


def validate_records(records: List[Dict[str, Any]]) -> List[str]:
    """Schema-check records; returns problem strings (empty = valid)."""
    problems: List[str] = []
    if not records:
        return ["empty telemetry file (no records)"]
    # JSONL lines parse to any JSON value; a bare list/number/string is a
    # malformed file, not a crash (rec.get would raise AttributeError).
    non_dicts = [
        f"record {i}: not an object (got {type(rec).__name__})"
        for i, rec in enumerate(records)
        if not isinstance(rec, dict)
    ]
    if non_dicts:
        return non_dicts
    head = records[0]
    schema = head.get("schema")
    if head.get("type") != "meta":
        problems.append(f"first record must be 'meta', got {head.get('type')!r}")
    elif schema not in SUPPORTED_SCHEMAS:
        problems.append(
            f"unsupported schema {schema!r} "
            f"(supported: {', '.join(str(s) for s in SUPPORTED_SCHEMAS)})"
        )
    run_ids = set()
    for i, rec in enumerate(records):
        kind = rec.get("type")
        where = f"record {i}"
        if kind not in _RECORD_TYPES:
            problems.append(f"{where}: unknown type {kind!r}")
            continue
        if kind == "meta" and i > 0:
            # One header per file; a second meta with a different schema
            # is the concatenated mixed-version shape.
            if rec.get("schema") != schema:
                problems.append(
                    f"{where}: mixed-version file (meta schema "
                    f"{rec.get('schema')!r} after schema {schema!r})"
                )
            else:
                problems.append(f"{where}: duplicate meta header")
        if kind in _V2_TYPES and schema == TELEMETRY_SCHEMA_VERSION:
            problems.append(
                f"{where}: {kind} record in a schema-{TELEMETRY_SCHEMA_VERSION} "
                f"file (trace records need schema {TELEMETRY_SCHEMA_V2})"
            )
        if kind == "run":
            if not isinstance(rec.get("id"), int):
                problems.append(f"{where}: run record without integer 'id'")
                continue
            run_ids.add(rec["id"])
            if not isinstance(rec.get("config"), dict):
                problems.append(f"{where}: run {rec['id']} has no config object")
            if not isinstance(rec.get("summary"), dict):
                problems.append(f"{where}: run {rec['id']} has no summary object")
        elif kind in ("span", "series", "trace", "path", "event"):
            if rec.get("run") not in run_ids:
                problems.append(
                    f"{where}: {kind} references unknown run {rec.get('run')!r}"
                )
        if kind == "span":
            if not isinstance(rec.get("name"), str):
                problems.append(f"{where}: span without a name")
            wall = rec.get("wall_ms")
            if not isinstance(wall, (int, float)) or wall < 0:
                problems.append(f"{where}: span wall_ms must be >= 0, got {wall!r}")
            depth = rec.get("depth")
            if not isinstance(depth, int) or depth < 0:
                problems.append(f"{where}: span depth must be >= 0, got {depth!r}")
            # id/parent_id are optional (pre-span-tree files lack them)
            # but must be well-typed when present.
            if "id" in rec and (not isinstance(rec["id"], int) or rec["id"] < 0):
                problems.append(f"{where}: span id must be an int >= 0")
            parent = rec.get("parent_id")
            if parent is not None and not isinstance(parent, int):
                problems.append(f"{where}: span parent_id must be an int or null")
        elif kind == "trace":
            if not isinstance(rec.get("contacts"), int) or rec["contacts"] < 0:
                problems.append(f"{where}: trace needs an integer contact count")
            if not isinstance(rec.get("sim_time"), (int, float)):
                problems.append(f"{where}: trace needs a numeric sim_time")
            columns = rec.get("columns")
            if not isinstance(columns, dict) or not all(
                name in columns for name in _TRACE_COLUMNS
            ):
                problems.append(
                    f"{where}: trace columns must include "
                    f"{', '.join(_TRACE_COLUMNS)}"
                )
            else:
                lengths = {name: len(col) for name, col in columns.items()}
                if len(set(lengths.values())) > 1:
                    problems.append(f"{where}: ragged trace columns {lengths}")
        elif kind == "path":
            length = rec.get("length")
            if not isinstance(length, int) or length < 0:
                problems.append(f"{where}: path length must be an int >= 0")
            if not isinstance(rec.get("sim_time"), (int, float)):
                problems.append(f"{where}: path needs a numeric sim_time")
            hops = rec.get("hops")
            if not isinstance(hops, dict):
                problems.append(f"{where}: path needs a hops object")
            else:
                lengths = {name: len(col) for name, col in hops.items()}
                if len(set(lengths.values())) > 1:
                    problems.append(f"{where}: ragged path hop columns {lengths}")
                elif isinstance(length, int) and lengths and set(lengths.values()) != {length}:
                    problems.append(
                        f"{where}: path length {length} does not match its "
                        f"hop columns {lengths}"
                    )
            for table in ("node_attribution", "edge_attribution"):
                if not isinstance(rec.get(table), dict):
                    problems.append(f"{where}: path needs a {table} object")
        elif kind == "series":
            columns = rec.get("columns")
            if not isinstance(columns, dict) or "round" not in columns:
                problems.append(f"{where}: series needs a 'round' column")
            else:
                lengths = {name: len(col) for name, col in columns.items()}
                if len(set(lengths.values())) > 1:
                    problems.append(f"{where}: ragged series columns {lengths}")
        elif kind == "event":
            if not isinstance(rec.get("kind"), str):
                problems.append(f"{where}: event without a kind")
            if not isinstance(rec.get("round"), int):
                problems.append(f"{where}: event without an integer round")
    if head.get("type") == "meta" and isinstance(head.get("runs"), int):
        if head["runs"] != len(run_ids):
            problems.append(
                f"meta announces {head['runs']} runs, file has {len(run_ids)}"
            )
    return problems


class TelemetrySink:
    """A JSONL destination for one :class:`~repro.obs.telemetry.Telemetry`."""

    def __init__(self, path: str) -> None:
        self.path = path

    def write(self, telemetry) -> int:
        """Export the collector; returns the record count."""
        return write_jsonl(telemetry.records(), self.path)

    def read(self) -> List[Dict[str, Any]]:
        return read_jsonl(self.path)

    def validate(self) -> List[str]:
        return validate_records(self.read())
