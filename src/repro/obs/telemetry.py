"""The telemetry collector every engine threads through.

A :class:`Telemetry` instance collects one or more :class:`RunTelemetry`
handles — one per execution: a seeded sequential run, or one chunk of a
vector batch.  Each handle owns a :class:`~repro.obs.spans.SpanRecorder`
(wall-clock), a :class:`~repro.obs.probes.RoundSeries` (per-round
samples), a pluggable probe table, and the run's config/summary/phase
records; :meth:`Telemetry.records` flattens everything into the JSONL
schema (:mod:`repro.obs.sink`).

Wiring contract
---------------
The *sequential* engine attaches a run by registering
``run.on_round`` as a :class:`~repro.sim.engine.Simulator` commit hook
(the pre-existing mechanism task observers use — the commit path gains
no new code, which is what keeps the telemetry-off path byte-identical
to the pre-telemetry engine) and pointing ``Metrics.span_recorder`` at
``run.spans`` so phases time themselves.  Algorithms contribute probes
via ``sim.telemetry.add_probe(name, fn)`` — ``fn(sim)`` is sampled
every ``probe_every`` committed rounds (``informed`` from protocol
progress, ``clusters`` from the clustering, ``task_error`` from task
states).  *Vector* runners receive the run handle directly and feed
batch-aggregate samples plus per-phase spans.

Sharded ``run_replications`` gives each shard a fresh collector
(:meth:`spawn`), then merges the shard collectors back in shard order
(:meth:`merge`) — the same deterministic, worker-count-independent
pattern as ``StreamingSummary``.  Finished handles drop their probe
closures, so collectors pickle across the process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.probes import RoundSeries, _py
from repro.obs.spans import SpanRecorder

#: Baseline schema version: the record set every export carries.
TELEMETRY_SCHEMA_VERSION = 1

#: Schema v2 = v1 plus the causal-trace record types (``trace``/``path``,
#: :mod:`repro.obs.trace`).  An export is stamped v2 only when at least
#: one run actually recorded a trace, so tracing-off files stay
#: byte-identical to the v1 exports older tooling expects.
TELEMETRY_SCHEMA_V2 = 2

#: Every schema version :func:`repro.obs.sink.validate_records` accepts.
SUPPORTED_SCHEMAS = (TELEMETRY_SCHEMA_VERSION, TELEMETRY_SCHEMA_V2)


@dataclass(frozen=True)
class TelemetryConfig:
    """Frozen, picklable telemetry knobs — what :class:`RunSpec` carries
    so sweep jobs can build a collector inside their worker process."""

    probe_every: int = 1
    series_cap: int = 2048
    collect_events: bool = True


class RunTelemetry:
    """One execution's telemetry: spans + series + probes + records."""

    def __init__(
        self, run_id: int, config: Dict[str, Any], probe_every: int, series_cap: int
    ) -> None:
        self.run_id = int(run_id)
        self.config = {k: _py(v) for k, v in dict(config).items()}
        self.probe_every = max(1, int(probe_every))
        self.spans = SpanRecorder()
        self.series = RoundSeries(series_cap)
        self.summary: Dict[str, Any] = {}
        self.phases: Optional[Dict[str, Dict[str, Any]]] = None
        self.events: List[Dict[str, Any]] = []
        #: Schema v2 causal-trace payloads (``None`` unless the run
        #: executed with contact tracing on — see :mod:`repro.obs.trace`).
        self.trace_record: Optional[Dict[str, Any]] = None
        self.path_record: Optional[Dict[str, Any]] = None
        #: Pluggable per-round samplers ``name -> fn(sim) -> value``;
        #: cleared when the run finishes (closures don't pickle).
        self.probes: Dict[str, Callable] = {}

    def add_probe(self, name: str, fn: Callable) -> None:
        """Register (or replace) a per-round sampler."""
        self.probes[name] = fn

    def span(self, name: str):
        """Time a block into this run's span log."""
        return self.spans.span(name)

    # -- sequential-engine hooks ---------------------------------------

    def on_round(self, sim) -> None:
        """Commit hook: sample every ``probe_every`` committed rounds."""
        if sim.metrics.rounds % self.probe_every:
            return
        self.sample(sim)

    def sample(self, sim, force: bool = False) -> None:
        """Take one sample of the engine state plus all registered probes."""
        metrics = sim.metrics
        row = {
            "round": metrics.rounds,
            "alive": int(sim.net.alive.sum()),
            "messages": metrics.messages,
            "bits": metrics.bits,
        }
        # Event-tier runs also carry the simulated clock; the default
        # round tier keeps the historical row shape (schema unchanged).
        scheduler = getattr(sim, "scheduler", None)
        if scheduler is not None and scheduler.name == "event":
            row["sim_time"] = float(scheduler.sim_time)
        for name, fn in self.probes.items():
            row[name] = _py(fn(sim))
        if force:
            self.series.force(**row)
        else:
            self.series.append(**row)


def _phases_dict(metrics) -> Dict[str, Dict[str, Any]]:
    """Serialise ``Metrics.phases`` for the run record."""
    out: Dict[str, Dict[str, Any]] = {}
    for name, st in metrics.phases.items():
        out[name] = {
            "rounds": int(st.rounds),
            "messages": int(st.messages),
            "bits": int(st.bits),
            "max_fanin": int(st.max_fanin),
            "wall_ms": round(float(st.wall_ms), 3),
        }
    return out


class Telemetry:
    """The whole-invocation collector (see module docs)."""

    def __init__(
        self,
        *,
        probe_every: int = 1,
        series_cap: int = 2048,
        collect_events: bool = True,
    ) -> None:
        if probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {probe_every}")
        self.probe_every = int(probe_every)
        self.series_cap = int(series_cap)
        self.collect_events = bool(collect_events)
        self.runs: List[RunTelemetry] = []
        self._next_id = 0

    @classmethod
    def from_config(cls, config: TelemetryConfig) -> "Telemetry":
        return cls(
            probe_every=config.probe_every,
            series_cap=config.series_cap,
            collect_events=config.collect_events,
        )

    def config(self) -> TelemetryConfig:
        return TelemetryConfig(
            probe_every=self.probe_every,
            series_cap=self.series_cap,
            collect_events=self.collect_events,
        )

    def spawn(self) -> "Telemetry":
        """A fresh, empty collector with the same knobs (shard-local)."""
        return Telemetry.from_config(self.config())

    # -- run lifecycle -------------------------------------------------

    def begin_run(self, config: Dict[str, Any]) -> RunTelemetry:
        """Open a run handle; engines wire it up and feed it."""
        run = RunTelemetry(self._next_id, config, self.probe_every, self.series_cap)
        self._next_id += 1
        self.runs.append(run)
        return run

    def finish_run(self, run: RunTelemetry, *, sim=None, report=None, outcome=None):
        """Seal a run: force the final sample, snapshot phases/summary,
        capture trace events, and drop the probe closures."""
        if sim is not None:
            run.sample(sim, force=True)
            run.phases = _phases_dict(sim.metrics)
            run.summary.setdefault(
                "wall_ms_total", round(float(sim.metrics.total.wall_ms), 3)
            )
        if report is not None:
            run.summary.update(
                rounds=int(report.rounds),
                spread_rounds=int(report.spread_rounds),
                messages=int(report.messages),
                bits=int(report.bits),
                max_fanin=int(report.max_fanin),
                informed_fraction=float(report.informed_fraction),
                success=bool(report.success),
            )
            trace = report.trace
            if (
                self.collect_events
                and trace is not None
                and getattr(trace, "enabled", False)
            ):
                run.events = [
                    {
                        "round": int(e.round),
                        "kind": e.kind,
                        "data": {k: _py(v) for k, v in e.data.items()},
                    }
                    for e in trace.events
                ]
            contacts = report.extras.get("contact_trace")
            path = report.extras.get("critical_path")
            if contacts is not None and path is not None:
                from repro.obs.trace import path_record, trace_record

                # The informed-front timeline prefers the protocol-aware
                # probe series (round, sim_time, informed) over the
                # trace's reached-node fallback.
                front = None
                if len(run.series):
                    cols = run.series.to_columns()
                    if "sim_time" in cols and "informed" in cols:
                        front = {
                            "round": list(cols["round"]),
                            "time": list(cols["sim_time"]),
                            "informed": list(cols["informed"]),
                        }
                run.trace_record = trace_record(contacts)
                run.path_record = path_record(
                    contacts, path, rounds=int(report.rounds), front=front
                )
        if outcome is not None:
            reps = int(outcome.reps)
            run.summary.update(
                reps=reps,
                rounds_mean=float(outcome.rounds.mean()),
                messages_total=int(outcome.messages.sum()),
                bits_total=int(outcome.bits.sum()),
                max_fanin=int(outcome.max_fanin.max()),
                success_rate=float(outcome.success.mean()),
            )
            sim_time = getattr(outcome, "sim_time", None)
            if sim_time is not None:
                run.summary.update(
                    sim_time_mean=float(sim_time.mean()),
                    sim_time_max=float(sim_time.max()),
                )
        run.probes = {}
        return run

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "Telemetry") -> None:
        """Absorb another collector's runs (renumbered in arrival order).

        ``run_replications`` merges shard collectors in shard order, so
        the merged run ids are worker-count independent.
        """
        for run in other.runs:
            run.run_id = self._next_id
            self._next_id += 1
            self.runs.append(run)

    # -- export --------------------------------------------------------

    def records(self) -> Iterator[Dict[str, Any]]:
        """Flatten into JSONL records (the documented schema).

        The meta header is stamped v2 only when a run carries causal
        trace records, so tracing-off exports stay byte-identical v1.
        """
        traced = any(
            run.trace_record is not None or run.path_record is not None
            for run in self.runs
        )
        yield {
            "type": "meta",
            "schema": TELEMETRY_SCHEMA_V2 if traced else TELEMETRY_SCHEMA_VERSION,
            "generator": "repro-gossip",
            "probe_every": self.probe_every,
            "series_cap": self.series_cap,
            "runs": len(self.runs),
        }
        for run in self.runs:
            yield {
                "type": "run",
                "id": run.run_id,
                "config": run.config,
                "summary": run.summary,
                "phases": run.phases,
            }
            for rec in run.spans.records:
                yield {
                    "type": "span",
                    "run": run.run_id,
                    "name": rec.name,
                    "start_ms": round(rec.start_ms, 3),
                    "wall_ms": round(rec.wall_ms, 3),
                    "depth": rec.depth,
                    "id": rec.id,
                    "parent_id": rec.parent_id,
                }
            if len(run.series):
                yield {
                    "type": "series",
                    "run": run.run_id,
                    "probe_every": run.probe_every,
                    "decimated": run.series.decimated,
                    "stride": run.series.stride,
                    "columns": run.series.to_columns(),
                }
            if run.trace_record is not None:
                yield {"run": run.run_id, **run.trace_record}
            if run.path_record is not None:
                yield {"run": run.run_id, **run.path_record}
            for event in run.events:
                yield {"type": "event", "run": run.run_id, **event}

    def write(self, path: str) -> int:
        """Export as JSONL; returns the record count."""
        from repro.obs.sink import TelemetrySink

        return TelemetrySink(path).write(self)
